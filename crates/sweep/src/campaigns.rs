//! Canonical campaign constructors — one per paper artifact.
//!
//! The `sweep` CLI, the `ltrf-bench` harness, and the regression tests must
//! agree — byte for byte — on what "the Figure 9 campaign" or "the power
//! sweep" means: the golden-file tests pin the CLI's CSV output, the bench
//! harness's figure functions must reproduce the CLI's numbers, and a bench
//! run must warm-hit a cache the CLI populated (and vice versa). Keeping
//! every spec constructor here makes that agreement structural rather than
//! a convention: there is exactly one definition of each campaign in the
//! workspace, and every entry point calls it.
//!
//! | Constructor | Paper artifact | CLI entry point | Harness entry point |
//! |---|---|---|---|
//! | [`fig9_spec`] | Figure 9 (overall IPC) | `sweep fig9` | `fig9` binary |
//! | [`fig10_spec`] | Figure 10 (RF power, config #7) | `sweep power` (the #7 slice) | `fig10` binary |
//! | [`fig11_spec`] | Figure 11 (max tolerable latency) | `sweep fig11` | `fig11` binary |
//! | [`fig12_spec`] | Figure 12 (interval-size sweep) | `sweep fig12` | `fig12` binary |
//! | [`fig13_spec`] | Figure 13 (active-warp sweep) | `sweep fig13` | `fig13` binary |
//! | [`fig14_spec`] | Figure 14 (scheme comparison) | `sweep fig14` | `fig14` binary |
//! | [`table2_spec`] | Table 2 (design-point IPC) | `sweep table2` | `table2` binary |
//! | [`power_sweep_spec`] | §6.4 power across all design points | `sweep power` | `fig10` binary (the #7 slice) |
//! | [`gen_campaign_spec`] | beyond-paper generated populations | `sweep gen-campaign` | `gen_campaign` binary |
//! | [`trace_campaign_spec`] | beyond-paper trace-driven workloads | `sweep trace-campaign` | `trace_campaign` binary |
//! | [`interconnect_specs`] | beyond-paper SM↔L2 network study | `sweep interconnect` | `interconnect` binary |
//! | [`repro_specs`] | the full artifact set | `sweep repro` | — |
//!
//! Cache identity is per *point*, not per campaign: a point's key material
//! is its workload, memory selection, seeding/normalization policy, and full
//! [`ltrf_core::ExperimentConfig`] (including the power-model calibration).
//! Campaigns that share points — `fig10_spec` is the configuration-#7 slice
//! of [`power_sweep_spec`]; the quick fig9 matrix is a subset of the full
//! one — therefore share cache entries, which is what makes a warm
//! `sweep repro` rerun (and a bench rerun over a CLI-populated cache) hit
//! 100%. See `REPRODUCING.md` for the artifact atlas.

use ltrf_core::Organization;
use ltrf_sim::{InterconnectConfig, Topology};
use ltrf_tech::PowerParams;
use ltrf_trace::TraceWorkloadId;
use ltrf_workloads::GeneratorConfig;

use crate::spec::{SeedMode, SweepSpec};
use crate::CAMPAIGN_SEED;

/// The organizations of Figure 9 (everything except the §6.6 strand
/// ablation).
pub const FIG9_ORGS: [Organization; 6] = [
    Organization::Baseline,
    Organization::Rfc,
    Organization::Shrf,
    Organization::Ltrf,
    Organization::LtrfPlus,
    Organization::Ideal,
];

/// The organizations a generated campaign compares (the paper's headline
/// pair: the conventional register file and LTRF).
pub const GEN_CAMPAIGN_ORGS: [Organization; 2] = [Organization::Baseline, Organization::Ltrf];

/// The campaign (and report file) name for a figure at the requested SM
/// count: the historical name at one SM — so report files keep their paths
/// and their single-SM contents — and a `-smN` suffix for full-GPU variants
/// so they never clobber the single-SM reports.
#[must_use]
pub fn campaign_name(base: &str, sm_count: usize) -> String {
    if sm_count == 1 {
        base.to_string()
    } else {
        format!("{base}-sm{sm_count}")
    }
}

/// The Figure 9 campaign: [`FIG9_ORGS`] × the given workloads on
/// configurations #6 and #7, normalized — exactly what `sweep fig9` runs
/// (and what the golden-file regression test pins).
#[must_use]
pub fn fig9_spec<S: Into<String>>(
    workloads: impl IntoIterator<Item = S>,
    sm_count: usize,
    seed_mode: SeedMode,
) -> SweepSpec {
    SweepSpec::builder(campaign_name("fig9", sm_count))
        .workloads(workloads)
        .organizations(FIG9_ORGS)
        .config_ids([6, 7])
        .sm_counts([sm_count])
        .seed_mode(seed_mode)
        .normalize(true)
        .build()
}

/// The organizations of the Figure 11 latency-tolerance matrix.
pub const FIG11_ORGS: [Organization; 4] = [
    Organization::Baseline,
    Organization::Rfc,
    Organization::Ltrf,
    Organization::LtrfPlus,
];

/// The organizations of the Figure 14 scheme comparison (the §6.6 strand
/// ablation rides along here).
pub const FIG14_ORGS: [Organization; 5] = [
    Organization::Baseline,
    Organization::Rfc,
    Organization::Shrf,
    Organization::LtrfStrand,
    Organization::Ltrf,
];

/// The organizations of the power artifacts (Figure 10 and the `sweep
/// power` design-point sweep): the three register-caching schemes whose
/// power the paper reports, each normalized to the baseline.
pub const POWER_ORGS: [Organization; 3] = [
    Organization::Rfc,
    Organization::Ltrf,
    Organization::LtrfPlus,
];

/// The organizations of the Table 2 design-point sweep (the paper's
/// headline pair).
pub const TABLE2_ORGS: [Organization; 2] = [Organization::Baseline, Organization::Ltrf];

/// The register-interval sizes of the Figure 12 sensitivity sweep.
pub const FIG12_INTERVAL_SIZES: [usize; 3] = [8, 16, 32];

/// The active-warp counts of the Figure 13 sensitivity sweep.
pub const FIG13_WARP_COUNTS: [usize; 3] = [4, 8, 16];

/// The latency-sweep matrix shared by Figures 11–14: the given organizations
/// × the paper's latency factors on configuration #1, un-normalized (the
/// sweeps report IPC *relative to each curve's own 1× point*, which the
/// consumers derive; baseline-normalization would double-simulate).
fn latency_matrix<S: Into<String>>(
    name: String,
    workloads: impl IntoIterator<Item = S>,
    organizations: impl IntoIterator<Item = Organization>,
    sm_count: usize,
    seed_mode: SeedMode,
) -> crate::SweepSpecBuilder {
    SweepSpec::builder(name)
        .workloads(workloads)
        .organizations(organizations)
        .config_ids([1])
        .latency_factors(ltrf_core::paper_latency_factors().into_iter().map(Some))
        .sm_counts([sm_count])
        .seed_mode(seed_mode)
        .normalize(false)
}

/// The Figure 11 campaign: [`FIG11_ORGS`] × the given workloads × the
/// paper's latency factors on configuration #1 — exactly what `sweep fig11`
/// runs and what `ltrf-bench`'s `figure11` rows are derived from.
#[must_use]
pub fn fig11_spec<S: Into<String>>(
    workloads: impl IntoIterator<Item = S>,
    sm_count: usize,
    seed_mode: SeedMode,
) -> SweepSpec {
    latency_matrix(
        campaign_name("fig11", sm_count),
        workloads,
        FIG11_ORGS,
        sm_count,
        seed_mode,
    )
    .build()
}

/// The Figure 12 campaign: LTRF × the given workloads × the paper's latency
/// factors × [`FIG12_INTERVAL_SIZES`] registers per register-interval —
/// exactly what `sweep fig12` runs (and what the golden-file regression
/// test pins), and what `ltrf-bench`'s `figure12` series are derived from.
#[must_use]
pub fn fig12_spec<S: Into<String>>(
    workloads: impl IntoIterator<Item = S>,
    sm_count: usize,
    seed_mode: SeedMode,
) -> SweepSpec {
    latency_matrix(
        campaign_name("fig12", sm_count),
        workloads,
        [Organization::Ltrf],
        sm_count,
        seed_mode,
    )
    .registers_per_interval(FIG12_INTERVAL_SIZES)
    .build()
}

/// The Figure 13 campaign: LTRF × the given workloads × the paper's latency
/// factors × [`FIG13_WARP_COUNTS`] active warps — exactly what `sweep
/// fig13` runs and what `ltrf-bench`'s `figure13` series are derived from.
#[must_use]
pub fn fig13_spec<S: Into<String>>(
    workloads: impl IntoIterator<Item = S>,
    sm_count: usize,
    seed_mode: SeedMode,
) -> SweepSpec {
    latency_matrix(
        campaign_name("fig13", sm_count),
        workloads,
        [Organization::Ltrf],
        sm_count,
        seed_mode,
    )
    .active_warps(FIG13_WARP_COUNTS)
    .build()
}

/// The Figure 14 campaign: [`FIG14_ORGS`] × the given workloads × the
/// paper's latency factors on configuration #1 — exactly what `sweep fig14`
/// runs and what `ltrf-bench`'s `figure14` series are derived from.
#[must_use]
pub fn fig14_spec<S: Into<String>>(
    workloads: impl IntoIterator<Item = S>,
    sm_count: usize,
    seed_mode: SeedMode,
) -> SweepSpec {
    latency_matrix(
        campaign_name("fig14", sm_count),
        workloads,
        FIG14_ORGS,
        sm_count,
        seed_mode,
    )
    .build()
}

/// The Table 2 design-point campaign: [`TABLE2_ORGS`] × the given workloads
/// on every configuration #1–#7, normalized — exactly what `sweep table2`
/// runs.
#[must_use]
pub fn table2_spec<S: Into<String>>(
    workloads: impl IntoIterator<Item = S>,
    sm_count: usize,
    seed_mode: SeedMode,
) -> SweepSpec {
    SweepSpec::builder(campaign_name("table2", sm_count))
        .workloads(workloads)
        .organizations(TABLE2_ORGS)
        .config_ids(1..=7)
        .sm_counts([sm_count])
        .seed_mode(seed_mode)
        .normalize(true)
        .build()
}

/// The Figure 10 campaign: [`POWER_ORGS`] × the given workloads on the DWM
/// configuration #7, normalized — the paper's register-file power figure,
/// and what `ltrf-bench`'s `figure10` rows are derived from. Its points are
/// the configuration-#7 slice of [`power_sweep_spec`] (at the default
/// calibration), so the two campaigns share cache entries.
#[must_use]
pub fn fig10_spec<S: Into<String>>(
    workloads: impl IntoIterator<Item = S>,
    sm_count: usize,
    seed_mode: SeedMode,
) -> SweepSpec {
    SweepSpec::builder(campaign_name("fig10", sm_count))
        .workloads(workloads)
        .organizations(POWER_ORGS)
        .config_ids([7])
        .sm_counts([sm_count])
        .seed_mode(seed_mode)
        .normalize(true)
        .build()
}

/// The power sweep: [`POWER_ORGS`] × the given workloads on *every* Table 2
/// design point #1–#7, normalized, under an explicit [`PowerParams`]
/// calibration — exactly what `sweep power` runs. At the default
/// calibration its configuration-#7 rows are Figure 10; the other design
/// points extend the paper's §6.4 power discussion across the whole design
/// space.
///
/// The campaign (and report file) name carries a `-p<hex>` fingerprint of
/// non-default calibrations so differently calibrated sweeps never clobber
/// each other's reports; the calibration itself is cache-key material
/// either way.
///
/// # Panics
///
/// Panics if the calibration fails [`PowerParams::validate`] (the CLI
/// validates first and reports a friendly error).
#[must_use]
pub fn power_sweep_spec<S: Into<String>>(
    workloads: impl IntoIterator<Item = S>,
    sm_count: usize,
    seed_mode: SeedMode,
    params: PowerParams,
) -> SweepSpec {
    let mut base = String::from("power");
    if params != PowerParams::default() {
        let digest = crate::hash::sha256(serde::Serialize::to_value(&params).to_json().as_bytes());
        base.push_str(&format!("-p{}", &crate::hash::to_hex(&digest)[..8]));
    }
    SweepSpec::builder(campaign_name(&base, sm_count))
        .workloads(workloads)
        .organizations(POWER_ORGS)
        .config_ids(1..=7)
        .sm_counts([sm_count])
        .seed_mode(seed_mode)
        .normalize(true)
        .power_params(params)
        .build()
}

/// The full paper-artifact set, in atlas order: Figure 9, Figure 11,
/// Figure 12, Figure 13, Figure 14, Table 2, and the power sweep (at the
/// default calibration, whose configuration-#7 slice is Figure 10) — exactly
/// the campaigns `sweep repro` runs into one output directory. Campaigns
/// share many points (the Figure 11 matrix contains Figure 12's
/// 16-registers-per-interval curve and Figure 14's BL/RFC/LTRF curves;
/// Table 2 contains Figure 9's normalized points on configurations #6/#7),
/// so a cold `repro` already reuses work through the cache and a warm rerun
/// hits 100%.
#[must_use]
pub fn repro_specs<S: Into<String> + Clone>(
    workloads: &[S],
    sm_count: usize,
    seed_mode: SeedMode,
) -> Vec<SweepSpec> {
    vec![
        fig9_spec(workloads.iter().cloned(), sm_count, seed_mode),
        fig11_spec(workloads.iter().cloned(), sm_count, seed_mode),
        fig12_spec(workloads.iter().cloned(), sm_count, seed_mode),
        fig13_spec(workloads.iter().cloned(), sm_count, seed_mode),
        fig14_spec(workloads.iter().cloned(), sm_count, seed_mode),
        table2_spec(workloads.iter().cloned(), sm_count, seed_mode),
        power_sweep_spec(
            workloads.iter().cloned(),
            sm_count,
            seed_mode,
            PowerParams::default(),
        ),
    ]
}

/// The GPU-scaling campaign: BL and LTRF × the given workloads on
/// configuration #6 across an SM-count axis, normalized, grids weak-scaled
/// — exactly what `sweep gpu-scale` runs and what `ltrf-bench`'s
/// `gpu_scale` rows aggregate.
#[must_use]
pub fn gpu_scale_spec<S: Into<String>>(
    workloads: impl IntoIterator<Item = S>,
    sm_counts: &[usize],
    seed_mode: SeedMode,
) -> SweepSpec {
    SweepSpec::builder("gpu-scale")
        .workloads(workloads)
        .organizations([Organization::Baseline, Organization::Ltrf])
        .config_ids([6])
        .sm_counts(sm_counts.iter().copied())
        .seed_mode(seed_mode)
        .normalize(true)
        .build()
}

/// Parameters of a generated-workload campaign.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GenCampaignParams {
    /// Population size (members 0..population of the population).
    pub population: usize,
    /// Seed of the generated population (this is the *generator* seed; the
    /// simulation seeds come from `seed_mode`).
    pub population_seed: u64,
    /// Generator bounds the population is drawn under.
    pub config: GeneratorConfig,
    /// SMs per point (populations weak-scale with the SM count exactly as
    /// suite workloads do — the runner scales each member's grid and
    /// footprint from `ExperimentConfig::sm_count`).
    pub sm_count: usize,
    /// Simulation seeding policy.
    pub seed_mode: SeedMode,
}

impl Default for GenCampaignParams {
    fn default() -> Self {
        GenCampaignParams {
            population: 64,
            population_seed: CAMPAIGN_SEED,
            config: GeneratorConfig::default(),
            sm_count: 1,
            seed_mode: SeedMode::Fixed(CAMPAIGN_SEED),
        }
    }
}

impl GenCampaignParams {
    /// The campaign (and report file) name: sized, seeded, and — when the
    /// generator bounds differ from the defaults — fingerprinted, so
    /// differently parameterized campaigns never clobber each other's
    /// reports.
    #[must_use]
    pub fn name(&self) -> String {
        let mut base = format!(
            "gen-campaign-n{}-s{}",
            self.population, self.population_seed
        );
        if self.config != GeneratorConfig::default() {
            // Eight hex digits of the bounds' canonical encoding: enough to
            // separate report files; the full bounds remain readable in the
            // JSON report and the cache-key material.
            let digest = crate::hash::sha256(
                serde::Serialize::to_value(&self.config)
                    .to_json()
                    .as_bytes(),
            );
            base.push_str(&format!("-c{}", &crate::hash::to_hex(&digest)[..8]));
        }
        campaign_name(&base, self.sm_count)
    }
}

/// A generated-workload campaign: [`GEN_CAMPAIGN_ORGS`] × the population on
/// configuration #6, normalized — exactly what `sweep gen-campaign` runs and
/// what `ltrf-bench`'s `gen_campaign` experiment aggregates.
///
/// # Panics
///
/// Panics if the generator bounds fail [`GeneratorConfig::validate`] or the
/// population is empty (the CLI validates first and reports a friendly
/// error).
#[must_use]
pub fn gen_campaign_spec(params: &GenCampaignParams) -> SweepSpec {
    SweepSpec::builder(params.name())
        .organizations(GEN_CAMPAIGN_ORGS)
        .config_ids([6])
        .generated_population(params.population_seed, params.population, params.config)
        .sm_counts([params.sm_count])
        .seed_mode(params.seed_mode)
        .normalize(true)
        .build()
}

/// Parameters of a trace-driven campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceCampaignParams {
    /// The resolved trace identities the campaign sweeps (path + content
    /// fingerprint + lowering bounds, in axis order).
    pub traces: Vec<TraceWorkloadId>,
    /// SMs per point (trace workloads weak-scale with the SM count exactly
    /// as suite workloads do — the runner scales each lowered kernel's grid
    /// and footprint from `ExperimentConfig::sm_count`).
    pub sm_count: usize,
    /// Simulation seeding policy.
    pub seed_mode: SeedMode,
}

impl TraceCampaignParams {
    /// Binds the given trace identities to the default campaign policies
    /// (one SM, the fixed [`CAMPAIGN_SEED`]).
    #[must_use]
    pub fn new(traces: Vec<TraceWorkloadId>) -> Self {
        TraceCampaignParams {
            traces,
            sm_count: 1,
            seed_mode: SeedMode::Fixed(CAMPAIGN_SEED),
        }
    }

    /// The campaign (and report file) name: `trace-campaign-t<hex>`, where
    /// the eight hex digits fingerprint the full trace set (paths, content
    /// hashes, and lowering bounds), so campaigns over different traces —
    /// or over an edited trace — never clobber each other's reports. The
    /// full identities remain readable in the JSON report and the cache-key
    /// material.
    #[must_use]
    pub fn name(&self) -> String {
        let digest = crate::hash::sha256(
            serde::Serialize::to_value(&self.traces)
                .to_json()
                .as_bytes(),
        );
        let base = format!("trace-campaign-t{}", &crate::hash::to_hex(&digest)[..8]);
        campaign_name(&base, self.sm_count)
    }
}

/// A trace-driven campaign: [`GEN_CAMPAIGN_ORGS`] (the paper's headline
/// BL/LTRF pair) × the lowered trace workloads on configuration #6,
/// normalized — exactly what `sweep trace-campaign` runs and what
/// `ltrf-bench`'s `trace_campaign` experiment aggregates.
///
/// # Panics
///
/// Panics if `params.traces` is empty (the CLI resolves and validates the
/// trace files first and reports a friendly error).
#[must_use]
pub fn trace_campaign_spec(params: &TraceCampaignParams) -> SweepSpec {
    SweepSpec::builder(params.name())
        .organizations(GEN_CAMPAIGN_ORGS)
        .config_ids([6])
        .trace_population(params.traces.iter().cloned())
        .sm_counts([params.sm_count])
        .seed_mode(params.seed_mode)
        .normalize(true)
        .build()
}

/// Parameters of the interconnect-topology campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct InterconnectCampaignParams {
    /// The topologies the campaign compares, one spec (and one report file)
    /// per entry, in axis order.
    pub topologies: Vec<Topology>,
    /// Link width in bytes per cycle, shared by every non-ideal topology
    /// swept (the ideal network ignores it).
    pub link_width: u64,
    /// Bounded per-link queue depth, shared by every non-ideal topology
    /// swept (the ideal network ignores it).
    pub queue_depth: usize,
    /// The SM-count axis: contention (and therefore topology divergence)
    /// only appears once enough SMs share the L2, so the default axis
    /// reaches 16.
    pub sm_counts: Vec<usize>,
    /// Simulation seeding policy.
    pub seed_mode: SeedMode,
}

impl Default for InterconnectCampaignParams {
    fn default() -> Self {
        let network = InterconnectConfig::default();
        InterconnectCampaignParams {
            // The headline comparison: the contention-free reference against
            // the single-stage crossbar. `--topology T` narrows to one.
            topologies: vec![Topology::Ideal, Topology::Crossbar],
            link_width: network.link_width,
            queue_depth: network.queue_depth,
            sm_counts: vec![1, 4, 16],
            seed_mode: SeedMode::Fixed(CAMPAIGN_SEED),
        }
    }
}

impl InterconnectCampaignParams {
    /// The network configuration of one swept topology.
    #[must_use]
    pub fn network(&self, topology: Topology) -> InterconnectConfig {
        let mut config = InterconnectConfig::with_topology(topology);
        config.link_width = self.link_width;
        config.queue_depth = self.queue_depth;
        config
    }

    /// The campaign (and report file) name of one swept topology:
    /// `interconnect-<topology>`, suffixed with the link width and queue
    /// depth when they differ from the defaults so differently provisioned
    /// sweeps never clobber each other's reports.
    #[must_use]
    pub fn spec_name(&self, topology: Topology) -> String {
        let defaults = InterconnectConfig::default();
        let mut name = format!("interconnect-{}", topology.label());
        if self.link_width != defaults.link_width {
            name.push_str(&format!("-w{}", self.link_width));
        }
        if self.queue_depth != defaults.queue_depth {
            name.push_str(&format!("-q{}", self.queue_depth));
        }
        name
    }
}

/// The interconnect-topology campaign: LTRF × the given workloads on
/// configuration #6 across the SM-count axis, un-normalized, one spec per
/// selected topology — exactly what `sweep interconnect` runs and what
/// `ltrf-bench`'s `interconnect` experiment aggregates. Single-SM points
/// never touch the shared network and serve as the contention-free floor of
/// every topology's curve.
///
/// The ideal-topology spec at the default link provisioning carries the
/// default [`InterconnectConfig`], which is elided from cache-key material —
/// its points share cache identity with any historical campaign that ran the
/// same experiment. Every other topology (or any non-default link
/// width/queue depth) is new key material, so switching `--topology` misses
/// the cache 100% by construction.
#[must_use]
pub fn interconnect_specs<S: Into<String> + Clone>(
    workloads: &[S],
    params: &InterconnectCampaignParams,
) -> Vec<SweepSpec> {
    params
        .topologies
        .iter()
        .map(|&topology| {
            SweepSpec::builder(params.spec_name(topology))
                .workloads(workloads.iter().cloned())
                .organizations([Organization::Ltrf])
                .config_ids([6])
                .sm_counts(params.sm_counts.iter().copied())
                .seed_mode(params.seed_mode)
                .normalize(false)
                .interconnect(params.network(topology))
                .build()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig9_spec_matches_the_published_matrix() {
        let spec = fig9_spec(["hotspot", "btree"], 1, SeedMode::Fixed(CAMPAIGN_SEED));
        assert_eq!(spec.name, "fig9");
        assert_eq!(spec.points.len(), 2 * 6 * 2, "workloads x orgs x configs");
        assert!(spec.normalize);
        assert_eq!(
            fig9_spec(["hotspot"], 4, SeedMode::Fixed(1)).name,
            "fig9-sm4"
        );
    }

    #[test]
    fn latency_sweep_specs_match_the_published_matrices() {
        let factors = ltrf_core::paper_latency_factors().len();
        let workloads = ["hotspot", "btree"];
        let seed = SeedMode::Fixed(CAMPAIGN_SEED);

        let fig11 = fig11_spec(workloads, 1, seed);
        assert_eq!(fig11.name, "fig11");
        assert_eq!(fig11.points.len(), 2 * FIG11_ORGS.len() * factors);
        assert!(!fig11.normalize, "relative-IPC sweeps are un-normalized");

        let fig12 = fig12_spec(workloads, 1, seed);
        assert_eq!(fig12.points.len(), 2 * factors * FIG12_INTERVAL_SIZES.len());
        assert!(fig12
            .points
            .iter()
            .all(|p| p.config.organization == Organization::Ltrf));

        let fig13 = fig13_spec(workloads, 1, seed);
        assert_eq!(fig13.points.len(), 2 * factors * FIG13_WARP_COUNTS.len());

        let fig14 = fig14_spec(workloads, 4, seed);
        assert_eq!(fig14.name, "fig14-sm4");
        assert_eq!(fig14.points.len(), 2 * FIG14_ORGS.len() * factors);

        // The shared-cache overlaps the atlas documents: fig12's
        // 16-registers-per-interval LTRF curve is point-for-point a subset
        // of fig11's LTRF curve.
        let fig11_materials: std::collections::BTreeSet<String> = fig11
            .points
            .iter()
            .map(|p| crate::cache::point_key(&fig11, p).material)
            .collect();
        let shared = fig12
            .points
            .iter()
            .filter(|p| p.config.registers_per_interval == 16)
            .filter(|p| fig11_materials.contains(&crate::cache::point_key(&fig12, p).material))
            .count();
        assert_eq!(shared, 2 * factors, "fig12 rpi=16 points live in fig11 too");
    }

    #[test]
    fn power_specs_slice_and_fingerprint() {
        let workloads = ["hotspot"];
        let seed = SeedMode::Fixed(CAMPAIGN_SEED);
        let fig10 = fig10_spec(workloads, 1, seed);
        assert_eq!(fig10.name, "fig10");
        assert_eq!(fig10.points.len(), POWER_ORGS.len());
        assert!(fig10.normalize);

        let power = power_sweep_spec(workloads, 1, seed, PowerParams::default());
        assert_eq!(power.name, "power");
        assert_eq!(power.points.len(), POWER_ORGS.len() * 7);
        // fig10 is the configuration-#7 slice of the default-calibration
        // power sweep: identical cache identities.
        let power_materials: std::collections::BTreeSet<String> = power
            .points
            .iter()
            .map(|p| crate::cache::point_key(&power, p).material)
            .collect();
        assert!(fig10
            .points
            .iter()
            .all(|p| power_materials.contains(&crate::cache::point_key(&fig10, p).material)));

        // A non-default calibration fingerprints the report name and changes
        // every cache identity.
        let recalibrated = power_sweep_spec(
            workloads,
            1,
            seed,
            PowerParams {
                base_access_pj: 75.0,
                ..PowerParams::default()
            },
        );
        assert!(
            recalibrated.name.starts_with("power-p"),
            "calibration fingerprint suffix: {}",
            recalibrated.name
        );
        assert!(recalibrated.points.iter().all(
            |p| !power_materials.contains(&crate::cache::point_key(&recalibrated, p).material)
        ));
    }

    #[test]
    fn repro_specs_cover_the_artifact_atlas() {
        let specs = repro_specs(&["hotspot"], 1, SeedMode::Fixed(CAMPAIGN_SEED));
        let names: Vec<&str> = specs.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(
            names,
            ["fig9", "fig11", "fig12", "fig13", "fig14", "table2", "power"]
        );
        // Campaign names are report file names; they must be unique so one
        // output directory holds the whole artifact set.
        let unique: std::collections::BTreeSet<&str> = names.iter().copied().collect();
        assert_eq!(unique.len(), names.len());
        assert!(specs.iter().all(|s| !s.points.is_empty()));
    }

    #[test]
    fn gen_campaign_spec_enumerates_the_population() {
        let params = GenCampaignParams {
            population: 5,
            population_seed: 7,
            ..GenCampaignParams::default()
        };
        let spec = gen_campaign_spec(&params);
        assert_eq!(spec.name, "gen-campaign-n5-s7");
        assert_eq!(spec.points.len(), 5 * GEN_CAMPAIGN_ORGS.len());
        assert!(spec.points.iter().all(|p| p.generated.is_some()));
        let multi_sm = GenCampaignParams {
            sm_count: 2,
            ..params
        };
        assert_eq!(multi_sm.name(), "gen-campaign-n5-s7-sm2");
    }

    #[test]
    fn trace_campaign_spec_enumerates_the_traces() {
        use ltrf_trace::LoweringBounds;

        let id = |path: &str, hash: &str| TraceWorkloadId {
            path: path.to_string(),
            content_hash: hash.to_string(),
            bounds: LoweringBounds::default(),
        };
        let params = TraceCampaignParams::new(vec![
            id("examples/traces/straight_line.trace", "cbf29ce484222325"),
            id("examples/traces/divergent_loop.trace", "0123456789abcdef"),
        ]);
        let spec = trace_campaign_spec(&params);
        assert!(spec.name.starts_with("trace-campaign-t"), "{}", spec.name);
        assert_eq!(spec.points.len(), 2 * GEN_CAMPAIGN_ORGS.len());
        assert!(spec.normalize);
        assert!(spec.points.iter().all(|p| p.trace.is_some()));
        assert!(spec
            .points
            .iter()
            .any(|p| p.workload == "trace:straight_line"));

        // Stable: the same trace set always names the same campaign; an
        // edited trace (new content hash) renames it.
        assert_eq!(spec.name, trace_campaign_spec(&params).name);
        let edited = TraceCampaignParams::new(vec![
            id("examples/traces/straight_line.trace", "ffffffffffffffff"),
            id("examples/traces/divergent_loop.trace", "0123456789abcdef"),
        ]);
        assert_ne!(edited.name(), params.name());

        let multi_sm = TraceCampaignParams {
            sm_count: 2,
            ..params.clone()
        };
        assert!(multi_sm.name().ends_with("-sm2"), "{}", multi_sm.name());
    }

    #[test]
    fn interconnect_specs_sweep_one_spec_per_topology() {
        let params = InterconnectCampaignParams::default();
        let specs = interconnect_specs(&["hotspot", "btree"], &params);
        assert_eq!(specs.len(), 2, "one spec per topology");
        assert_eq!(specs[0].name, "interconnect-ideal");
        assert_eq!(specs[1].name, "interconnect-crossbar");
        for spec in &specs {
            assert_eq!(spec.points.len(), 2 * params.sm_counts.len());
            assert!(!spec.normalize);
            assert!(spec
                .points
                .iter()
                .all(|p| p.config.organization == Organization::Ltrf));
        }
        // The ideal spec at default provisioning carries the default
        // network (elided from cache keys); the crossbar spec's identity
        // differs on every point.
        assert!(specs[0]
            .points
            .iter()
            .all(|p| p.config.interconnect == InterconnectConfig::default()));
        let ideal_materials: std::collections::BTreeSet<String> = specs[0]
            .points
            .iter()
            .map(|p| crate::cache::point_key(&specs[0], p).material)
            .collect();
        assert!(specs[1]
            .points
            .iter()
            .all(|p| !ideal_materials.contains(&crate::cache::point_key(&specs[1], p).material)));

        // Non-default provisioning fingerprints the report names.
        let provisioned = InterconnectCampaignParams {
            topologies: vec![Topology::Mesh2D],
            link_width: 16,
            queue_depth: 4,
            ..InterconnectCampaignParams::default()
        };
        assert_eq!(
            provisioned.spec_name(Topology::Mesh2D),
            "interconnect-mesh-w16-q4"
        );
        let mesh = interconnect_specs(&["hotspot"], &provisioned);
        assert_eq!(mesh.len(), 1);
        assert!(mesh[0]
            .points
            .iter()
            .all(|p| p.config.interconnect.link_width == 16
                && p.config.interconnect.queue_depth == 4));
    }

    #[test]
    fn non_default_bounds_fingerprint_the_campaign_name() {
        let default_bounds = GenCampaignParams::default();
        assert_eq!(default_bounds.name(), "gen-campaign-n64-s401743896");
        let narrowed = GenCampaignParams {
            config: GeneratorConfig {
                max_regs: 96,
                ..GeneratorConfig::default()
            },
            ..GenCampaignParams::default()
        };
        let name = narrowed.name();
        assert!(
            name.starts_with("gen-campaign-n64-s401743896-c"),
            "bounds fingerprint suffix: {name}"
        );
        assert_ne!(name, default_bounds.name());
        // Stable: the same bounds always fingerprint identically.
        assert_eq!(name, narrowed.name());
    }
}
