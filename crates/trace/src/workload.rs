//! Trace identity and the [`Workload`] adapter.
//!
//! A [`TraceWorkloadId`] is everything a sweep point needs to both *name* a
//! trace-driven workload (for cache keys: path, content fingerprint, and the
//! lowering bounds) and *rebuild* it on demand ([`TraceWorkloadId::materialize`]
//! re-reads, re-verifies, re-parses, and re-lowers the file). Materialized
//! workloads expose exactly the interface the `ltrf-workloads` suites do,
//! including `kernel_for_sm_count` weak scaling, so the sweep executor treats
//! them like any other workload.

use std::collections::HashMap;
use std::path::Path;
use std::sync::{Mutex, OnceLock};

use ltrf_workloads::{BenchmarkSuite, Workload, WorkloadSpec};
use serde::{Deserialize, Serialize};

use crate::lower::{lower, memory_profile};
use crate::{parse_str, TraceError};

/// Limits on the lowering pass; part of a trace workload's cache identity.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LoweringBounds {
    /// Maximum dynamic instructions in the witness warp stream (also the
    /// replay cap used when walking the lowered kernel).
    pub max_dynamic_instructions: u64,
    /// Maximum basic blocks the reconstruction may produce.
    pub max_blocks: usize,
}

impl Default for LoweringBounds {
    fn default() -> Self {
        LoweringBounds {
            max_dynamic_instructions: 1_000_000,
            max_blocks: 4096,
        }
    }
}

/// FNV-1a 64-bit fingerprint of a trace's raw bytes, as 16 hex digits.
///
/// This is a change detector for cache identity, not a cryptographic hash;
/// the sweep cache hashes the full key material (including this fingerprint)
/// with SHA-256 on its own.
#[must_use]
pub fn content_fingerprint(bytes: &[u8]) -> String {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &byte in bytes {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    format!("{hash:016x}")
}

/// Interns a workload name so it can live in a `&'static str` spec field.
/// Repeated materializations of the same trace reuse one allocation.
fn interned_name(name: &str) -> &'static str {
    static NAMES: OnceLock<Mutex<HashMap<String, &'static str>>> = OnceLock::new();
    let mut names = NAMES
        .get_or_init(|| Mutex::new(HashMap::new()))
        .lock()
        .expect("name table is never poisoned");
    if let Some(&existing) = names.get(name) {
        return existing;
    }
    let leaked: &'static str = Box::leak(name.to_string().into_boxed_str());
    names.insert(name.to_string(), leaked);
    leaked
}

/// The durable identity of a trace-driven workload.
///
/// Serialized into sweep cache-key material: two points agree on their trace
/// axis if and only if they name the same file *content* (not just path)
/// lowered under the same bounds.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceWorkloadId {
    /// Path of the trace file, as given on the command line.
    pub path: String,
    /// [`content_fingerprint`] of the file at identity-capture time.
    pub content_hash: String,
    /// Bounds the trace will be lowered under.
    pub bounds: LoweringBounds,
}

impl TraceWorkloadId {
    /// Captures the identity of the trace at `path` (reads the file once to
    /// fingerprint it) with default bounds.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError::Io`] if the file cannot be read.
    pub fn from_path(path: impl AsRef<Path>) -> Result<Self, TraceError> {
        let path = path.as_ref();
        let bytes = std::fs::read(path).map_err(|e| TraceError::Io {
            path: path.display().to_string(),
            message: e.to_string(),
        })?;
        Ok(TraceWorkloadId {
            path: path.display().to_string(),
            content_hash: content_fingerprint(&bytes),
            bounds: LoweringBounds::default(),
        })
    }

    /// Replaces the lowering bounds (they are part of the identity).
    #[must_use]
    pub fn with_bounds(mut self, bounds: LoweringBounds) -> Self {
        self.bounds = bounds;
        self
    }

    /// The workload name this trace runs under: `trace:<file-stem>`.
    #[must_use]
    pub fn workload_name(&self) -> &'static str {
        let stem = Path::new(&self.path)
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| "unnamed".to_string());
        interned_name(&format!("trace:{stem}"))
    }

    /// Re-reads, verifies, parses, and lowers the trace into a [`Workload`].
    ///
    /// # Errors
    ///
    /// Returns a typed [`TraceError`] if the file is unreadable, its content
    /// no longer matches the recorded fingerprint, or it fails to parse or
    /// lower. Callers in the sweep executor turn these into per-point
    /// failures; nothing here panics on bad input.
    pub fn materialize(&self) -> Result<Workload, TraceError> {
        let bytes = std::fs::read(&self.path).map_err(|e| TraceError::Io {
            path: self.path.clone(),
            message: e.to_string(),
        })?;
        let actual = content_fingerprint(&bytes);
        if actual != self.content_hash {
            return Err(TraceError::ContentChanged {
                path: self.path.clone(),
                expected: self.content_hash.clone(),
                actual,
            });
        }
        let text = String::from_utf8_lossy(&bytes);
        let trace = parse_str(&text)?;
        let lowered = lower(&trace, &self.bounds)?;
        let kernel = lowered.kernel;
        let spec = WorkloadSpec {
            name: self.workload_name(),
            suite: BenchmarkSuite::Traced,
            regs_per_thread: kernel.regs_per_thread(),
            unconstrained_regs_per_thread: kernel.regs_per_thread(),
            sensitivity: kernel.sensitivity(),
            // The loop-nest shape fields describe synthetic suite kernels;
            // a traced kernel's structure lives in its CFG instead.
            outer_trips: 1,
            inner_trips: 1,
            body_alu: 0,
            body_loads: 0,
            body_shared: 0,
            body_sfu: 0,
            barrier_per_outer: false,
            memory: memory_profile(&trace),
            warps_per_block: kernel.launch().warps_per_block,
            blocks_per_grid: kernel.launch().blocks_per_grid,
        };
        Ok(Workload { spec, kernel })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const TRACE: &str = "\
-kernel name = unit
-grid dim = (4,1,1)
-block dim = (64,1,1)
-nregs = 48
warp = 0
0000 ffffffff 1 R0 MOV 0 0
0008 ffffffff 1 R1 LDG 1 R0 4 0x1000
0010 ffffffff 0 EXIT 0 0
";

    fn write_temp(name: &str, content: &str) -> std::path::PathBuf {
        let path = std::env::temp_dir().join(format!("ltrf-trace-{}-{name}", std::process::id()));
        std::fs::write(&path, content).unwrap();
        path
    }

    #[test]
    fn fingerprint_is_stable_and_content_sensitive() {
        assert_eq!(content_fingerprint(b""), "cbf29ce484222325");
        assert_eq!(content_fingerprint(b"a"), content_fingerprint(b"a"));
        assert_ne!(content_fingerprint(b"a"), content_fingerprint(b"b"));
    }

    #[test]
    fn materialize_builds_a_suite_compatible_workload() {
        let path = write_temp("ok.trace", TRACE);
        let id = TraceWorkloadId::from_path(&path).unwrap();
        let w = id.materialize().unwrap();
        assert!(w.name().starts_with("trace:"));
        assert_eq!(w.spec.suite, BenchmarkSuite::Traced);
        assert_eq!(w.spec.regs_per_thread, 48);
        assert!(w.is_register_sensitive());
        assert_eq!(w.kernel.launch().warps_per_block, 2);
        assert_eq!(w.kernel.launch().blocks_per_grid, 4);
        // Weak scaling works exactly like suite workloads.
        assert_eq!(w.kernel_for_sm_count(4).launch().blocks_per_grid, 16);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn names_are_interned_per_trace_stem() {
        let path = write_temp("stem.trace", TRACE);
        let a = TraceWorkloadId::from_path(&path).unwrap().workload_name();
        let b = TraceWorkloadId::from_path(&path).unwrap().workload_name();
        assert_eq!(a.as_ptr(), b.as_ptr(), "same stem, same allocation");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn content_change_is_detected_at_materialize_time() {
        let path = write_temp("drift.trace", TRACE);
        let id = TraceWorkloadId::from_path(&path).unwrap();
        std::fs::write(&path, TRACE.replace("-nregs = 48", "-nregs = 12")).unwrap();
        let err = id.materialize().unwrap_err();
        assert!(matches!(err, TraceError::ContentChanged { .. }), "{err:?}");
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn missing_file_is_a_typed_error() {
        let err = TraceWorkloadId::from_path("/no/such/file.trace").unwrap_err();
        assert!(matches!(err, TraceError::Io { .. }));
        let id = TraceWorkloadId {
            path: "/no/such/file.trace".to_string(),
            content_hash: "0".repeat(16),
            bounds: LoweringBounds::default(),
        };
        assert!(matches!(
            id.materialize().unwrap_err(),
            TraceError::Io { .. }
        ));
    }

    #[test]
    fn identity_round_trips_through_json() {
        let id = TraceWorkloadId {
            path: "examples/traces/straight_line.trace".to_string(),
            content_hash: "00ff00ff00ff00ff".to_string(),
            bounds: LoweringBounds {
                max_dynamic_instructions: 77,
                max_blocks: 5,
            },
        };
        let json = serde::to_json_string(&id);
        let back: TraceWorkloadId = serde::from_json_str(&json).unwrap();
        assert_eq!(back, id);
    }
}
