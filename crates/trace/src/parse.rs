//! Line-oriented parser (and canonical writer) for accelsim-style traces.
//!
//! The grammar is documented in `REPRODUCING.md`. In short:
//!
//! ```text
//! # comments and blank lines are ignored anywhere
//! -kernel name = vecadd
//! -grid dim = (2,1,1)
//! -block dim = (64,1,1)
//! -nregs = 10
//! -shmem = 0
//!
//! warp = 0
//! 0000 ffffffff 1 R2 MOV 0 0
//! 0008 ffffffff 1 R4 LDG 1 R2 4 0x10000000
//! 0010 ffffffff 0 EXIT 0 0
//! ```
//!
//! Each instruction record is `pc mask ndest [Rd...] OPCODE nsrc [Rs...]
//! mem-width [addr...]`. Unknown `-` header directives are ignored (real
//! accelsim headers carry many more), and opcode modifiers after a dot
//! (`LDG.E.SYS`) are stripped before mnemonic lookup. Every malformed line
//! maps to a typed [`TraceError`]; the parser never panics.

use ltrf_isa::Opcode;

use crate::TraceError;

/// The executed operation an instruction record maps to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceOp {
    /// A computational or memory instruction, mapped onto the kernel IR.
    Op(Opcode),
    /// A control transfer (`BRA`); becomes a block terminator when lowered.
    Branch,
    /// Thread exit (`EXIT` / `RET`); ends the trace's control flow.
    Exit,
}

impl TraceOp {
    /// Looks up a trace mnemonic (modifiers after `.` already stripped).
    #[must_use]
    pub fn from_mnemonic(mnemonic: &str) -> Option<Self> {
        let op = match mnemonic {
            "BRA" => return Some(TraceOp::Branch),
            "EXIT" | "RET" => return Some(TraceOp::Exit),
            "IADD" | "ISUB" | "IALU" | "LOP" | "LOP3" | "SHF" | "SHL" | "SHR" | "IMNMX" => {
                Opcode::IAlu
            }
            "IMAD" | "IMUL" | "XMAD" => Opcode::IMul,
            "FADD" | "FMUL" | "FALU" | "FMNMX" => Opcode::FAlu,
            "FFMA" => Opcode::FFma,
            "MUFU" | "SFU" | "RCP" | "SQRT" | "SIN" | "COS" | "LG2" | "EX2" => Opcode::Sfu,
            "MOV" | "MOV32I" | "SEL" => Opcode::Mov,
            "ISETP" | "FSETP" | "SETP" | "PSETP" => Opcode::SetP,
            "LDG" | "LD" => Opcode::LoadGlobal,
            "LDS" => Opcode::LoadShared,
            "LDC" => Opcode::LoadConst,
            "LDL" => Opcode::LoadLocal,
            "STG" | "ST" => Opcode::StoreGlobal,
            "STS" => Opcode::StoreShared,
            "STL" => Opcode::StoreLocal,
            "BAR" | "MEMBAR" => Opcode::Barrier,
            "NOP" => Opcode::Nop,
            _ => return None,
        };
        Some(TraceOp::Op(op))
    }

    /// The canonical mnemonic the writer emits; parsing it yields `self`.
    #[must_use]
    pub fn mnemonic(&self) -> &'static str {
        match self {
            TraceOp::Branch => "BRA",
            TraceOp::Exit => "EXIT",
            TraceOp::Op(op) => match op {
                Opcode::IAlu => "IADD",
                Opcode::IMul => "IMAD",
                Opcode::FAlu => "FADD",
                Opcode::FFma => "FFMA",
                Opcode::Sfu => "MUFU",
                Opcode::Mov => "MOV",
                Opcode::SetP => "ISETP",
                Opcode::LoadGlobal => "LDG",
                Opcode::LoadShared => "LDS",
                Opcode::LoadConst => "LDC",
                Opcode::LoadLocal => "LDL",
                Opcode::StoreGlobal => "STG",
                Opcode::StoreShared => "STS",
                Opcode::StoreLocal => "STL",
                Opcode::Barrier => "BAR",
                Opcode::Nop => "NOP",
                // `Opcode` is non-exhaustive; any future operation without a
                // trace mnemonic renders as (and parses back to) a no-op.
                _ => "NOP",
            },
        }
    }
}

/// One parsed per-warp instruction record.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceInstruction {
    /// Program counter of the instruction.
    pub pc: u64,
    /// Active-thread mask of the executing warp.
    pub mask: u32,
    /// Destination registers (usually zero or one).
    pub dsts: Vec<u8>,
    /// The operation.
    pub op: TraceOp,
    /// Source registers.
    pub srcs: Vec<u8>,
    /// Per-thread access width in bytes; zero for non-memory instructions.
    pub mem_width: u32,
    /// Accessed addresses (one per active thread at most; may be fewer).
    pub addresses: Vec<u64>,
}

/// The kernel-launch header of a trace.
#[derive(Debug, Clone, PartialEq)]
pub struct KernelHeader {
    /// Kernel name from `-kernel name`.
    pub kernel_name: String,
    /// Grid dimensions from `-grid dim`.
    pub grid_dim: (u32, u32, u32),
    /// Thread-block dimensions from `-block dim`.
    pub block_dim: (u32, u32, u32),
    /// Per-thread register count from `-nregs`.
    pub nregs: u32,
    /// Static shared memory per block in bytes from `-shmem` (default 0).
    pub shmem: u32,
}

impl KernelHeader {
    /// Thread blocks in the grid (product of the grid dimensions, min 1).
    #[must_use]
    pub fn blocks_per_grid(&self) -> u32 {
        let (x, y, z) = self.grid_dim;
        x.saturating_mul(y).saturating_mul(z).max(1)
    }

    /// Warps per thread block (threads rounded up to warps, min 1).
    #[must_use]
    pub fn warps_per_block(&self) -> u32 {
        let (x, y, z) = self.block_dim;
        let threads = u64::from(x) * u64::from(y) * u64::from(z);
        u32::try_from(threads.div_ceil(32))
            .unwrap_or(u32::MAX)
            .max(1)
    }
}

/// The instruction stream of one warp.
#[derive(Debug, Clone, PartialEq)]
pub struct WarpStream {
    /// Warp id from the `warp = N` line.
    pub warp_id: u32,
    /// The warp's dynamic instruction records, in execution order.
    pub instructions: Vec<TraceInstruction>,
}

/// A fully parsed trace file: header plus per-warp streams.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceFile {
    /// The kernel-launch header.
    pub header: KernelHeader,
    /// Per-warp instruction streams, in file order.
    pub warps: Vec<WarpStream>,
}

impl TraceFile {
    /// Total instruction records across all warp streams.
    #[must_use]
    pub fn record_count(&self) -> usize {
        self.warps.iter().map(|w| w.instructions.len()).sum()
    }
}

fn syntax(line: usize, message: impl Into<String>) -> TraceError {
    TraceError::Syntax {
        line,
        message: message.into(),
    }
}

fn parse_hex(token: &str, line: usize, what: &str) -> Result<u64, TraceError> {
    let digits = token.strip_prefix("0x").unwrap_or(token);
    u64::from_str_radix(digits, 16)
        .map_err(|_| syntax(line, format!("{what} `{token}` is not a hex number")))
}

fn parse_dec(token: &str, line: usize, what: &str) -> Result<u64, TraceError> {
    token
        .parse::<u64>()
        .map_err(|_| syntax(line, format!("{what} `{token}` is not a decimal number")))
}

fn parse_reg(token: &str, line: usize) -> Result<u8, TraceError> {
    let digits = token
        .strip_prefix('R')
        .or_else(|| token.strip_prefix('r'))
        .ok_or_else(|| syntax(line, format!("register `{token}` does not start with `R`")))?;
    let value = digits
        .parse::<u64>()
        .map_err(|_| syntax(line, format!("register `{token}` has a non-numeric index")))?;
    u8::try_from(value).map_err(|_| TraceError::RegisterOutOfRange {
        line,
        register: value,
    })
}

fn parse_dims(value: &str, line: usize, what: &str) -> Result<(u32, u32, u32), TraceError> {
    let inner = value
        .trim()
        .strip_prefix('(')
        .and_then(|v| v.strip_suffix(')'))
        .ok_or_else(|| syntax(line, format!("{what} `{value}` is not of the form (x,y,z)")))?;
    let mut parts = inner.split(',').map(str::trim);
    let mut next_dim = |name| {
        parts
            .next()
            .ok_or_else(|| {
                syntax(
                    line,
                    format!("{what} `{value}` is missing the {name} field"),
                )
            })
            .and_then(|t| parse_dec(t, line, name))
            .and_then(|v| {
                u32::try_from(v).map_err(|_| syntax(line, format!("{name} `{v}` overflows u32")))
            })
    };
    let dims = (next_dim("x")?, next_dim("y")?, next_dim("z")?);
    if parts.next().is_some() {
        return Err(syntax(
            line,
            format!("{what} `{value}` has more than three fields"),
        ));
    }
    Ok(dims)
}

fn next_token<'a>(
    tokens: &[&'a str],
    pos: &mut usize,
    line: usize,
    what: &str,
) -> Result<&'a str, TraceError> {
    let token = tokens
        .get(*pos)
        .copied()
        .ok_or_else(|| syntax(line, format!("record ends before the {what} field")))?;
    *pos += 1;
    Ok(token)
}

fn parse_instruction(tokens: &[&str], line: usize) -> Result<TraceInstruction, TraceError> {
    let mut pos = 0usize;

    let pc = parse_hex(next_token(tokens, &mut pos, line, "pc")?, line, "pc")?;
    let mask64 = parse_hex(
        next_token(tokens, &mut pos, line, "mask")?,
        line,
        "active mask",
    )?;
    let mask = u32::try_from(mask64).map_err(|_| {
        syntax(
            line,
            format!("active mask {mask64:#x} is wider than 32 bits"),
        )
    })?;

    let ndest = parse_dec(
        next_token(tokens, &mut pos, line, "ndest")?,
        line,
        "destination count",
    )?;
    if ndest > 4 {
        return Err(syntax(
            line,
            format!("destination count {ndest} is implausibly large"),
        ));
    }
    let mut dsts = Vec::with_capacity(ndest as usize);
    for _ in 0..ndest {
        dsts.push(parse_reg(
            next_token(tokens, &mut pos, line, "destination register")?,
            line,
        )?);
    }

    let mnemonic_token = next_token(tokens, &mut pos, line, "opcode")?;
    let base = mnemonic_token.split('.').next().unwrap_or(mnemonic_token);
    let op = TraceOp::from_mnemonic(base).ok_or_else(|| TraceError::UnknownOpcode {
        line,
        opcode: mnemonic_token.to_string(),
    })?;

    let nsrc = parse_dec(
        next_token(tokens, &mut pos, line, "nsrc")?,
        line,
        "source count",
    )?;
    if nsrc > 8 {
        return Err(syntax(
            line,
            format!("source count {nsrc} is implausibly large"),
        ));
    }
    let mut srcs = Vec::with_capacity(nsrc as usize);
    for _ in 0..nsrc {
        srcs.push(parse_reg(
            next_token(tokens, &mut pos, line, "source register")?,
            line,
        )?);
    }

    let mem_width64 = parse_dec(
        next_token(tokens, &mut pos, line, "memory width")?,
        line,
        "memory width",
    )?;
    let mem_width = u32::try_from(mem_width64)
        .map_err(|_| syntax(line, format!("memory width {mem_width64} overflows u32")))?;

    let mut addresses = Vec::new();
    if mem_width > 0 {
        while pos < tokens.len() {
            addresses.push(parse_hex(
                next_token(tokens, &mut pos, line, "address")?,
                line,
                "address",
            )?);
        }
        if addresses.len() > 32 {
            return Err(syntax(line, "more than 32 addresses on one record"));
        }
    } else if pos < tokens.len() {
        return Err(syntax(
            line,
            format!(
                "unexpected trailing token `{}` after a non-memory record",
                tokens[pos]
            ),
        ));
    }

    Ok(TraceInstruction {
        pc,
        mask,
        dsts,
        op,
        srcs,
        mem_width,
        addresses,
    })
}

/// Parses a trace from its textual form.
///
/// # Errors
///
/// Returns a typed [`TraceError`] for any header or record that does not
/// match the grammar; malformed input never panics.
pub fn parse_str(source: &str) -> Result<TraceFile, TraceError> {
    let mut kernel_name: Option<String> = None;
    let mut grid_dim: Option<(u32, u32, u32)> = None;
    let mut block_dim: Option<(u32, u32, u32)> = None;
    let mut nregs: Option<u32> = None;
    let mut shmem: u32 = 0;
    let mut warps: Vec<WarpStream> = Vec::new();

    for (index, raw) in source.lines().enumerate() {
        let line = index + 1;
        let text = raw.trim();
        if text.is_empty() || text.starts_with('#') {
            continue;
        }

        if let Some(rest) = text.strip_prefix('-') {
            // Header directive: `-key words = value`.
            let (key, value) = rest
                .split_once('=')
                .ok_or_else(|| syntax(line, "header directive has no `=`"))?;
            let key = key.trim();
            let value = value.trim();
            match key {
                "kernel name" => {
                    if value.is_empty() {
                        return Err(syntax(line, "kernel name is empty"));
                    }
                    kernel_name = Some(value.to_string());
                }
                "grid dim" => grid_dim = Some(parse_dims(value, line, "grid dim")?),
                "block dim" => block_dim = Some(parse_dims(value, line, "block dim")?),
                "nregs" => {
                    let v = parse_dec(value, line, "nregs")?;
                    nregs = Some(
                        u32::try_from(v)
                            .map_err(|_| syntax(line, format!("nregs `{v}` overflows u32")))?,
                    );
                }
                "shmem" => {
                    let v = parse_dec(value, line, "shmem")?;
                    shmem = u32::try_from(v)
                        .map_err(|_| syntax(line, format!("shmem `{v}` overflows u32")))?;
                }
                // Real accelsim headers carry many more directives (binary
                // version, local memory base, ...); they do not affect
                // lowering and are ignored.
                _ => {}
            }
            continue;
        }

        if let Some(rest) = text.strip_prefix("warp") {
            let rest = rest.trim_start();
            if let Some(value) = rest.strip_prefix('=') {
                let id = parse_dec(value.trim(), line, "warp id")?;
                let warp_id = u32::try_from(id)
                    .map_err(|_| syntax(line, format!("warp id `{id}` overflows u32")))?;
                warps.push(WarpStream {
                    warp_id,
                    instructions: Vec::new(),
                });
                continue;
            }
        }

        // Anything else must be an instruction record inside a warp stream.
        let tokens: Vec<&str> = text.split_whitespace().collect();
        let record = parse_instruction(&tokens, line)?;
        match warps.last_mut() {
            Some(stream) => stream.instructions.push(record),
            None => {
                return Err(syntax(
                    line,
                    "instruction record before any `warp = N` line",
                ));
            }
        }
    }

    let header = KernelHeader {
        kernel_name: kernel_name.ok_or(TraceError::MissingHeader {
            directive: "-kernel name",
        })?,
        grid_dim: grid_dim.ok_or(TraceError::MissingHeader {
            directive: "-grid dim",
        })?,
        block_dim: block_dim.ok_or(TraceError::MissingHeader {
            directive: "-block dim",
        })?,
        nregs: nregs.ok_or(TraceError::MissingHeader {
            directive: "-nregs",
        })?,
        shmem,
    };

    if warps.is_empty() || warps[0].instructions.is_empty() {
        return Err(TraceError::EmptyTrace);
    }

    Ok(TraceFile { header, warps })
}

/// Renders a trace back to its canonical textual form.
///
/// `parse_str(&write_trace(t)) == Ok(t)` for every well-formed trace whose
/// records use at most [`Instruction::MAX_SOURCES`] sources — the roundtrip
/// property the crate's proptests pin.
///
/// [`Instruction::MAX_SOURCES`]: ltrf_isa::Instruction::MAX_SOURCES
#[must_use]
pub fn write_trace(trace: &TraceFile) -> String {
    use std::fmt::Write as _;

    let mut out = String::new();
    let h = &trace.header;
    let _ = writeln!(out, "-kernel name = {}", h.kernel_name);
    let _ = writeln!(
        out,
        "-grid dim = ({},{},{})",
        h.grid_dim.0, h.grid_dim.1, h.grid_dim.2
    );
    let _ = writeln!(
        out,
        "-block dim = ({},{},{})",
        h.block_dim.0, h.block_dim.1, h.block_dim.2
    );
    let _ = writeln!(out, "-nregs = {}", h.nregs);
    let _ = writeln!(out, "-shmem = {}", h.shmem);
    for warp in &trace.warps {
        let _ = writeln!(out);
        let _ = writeln!(out, "warp = {}", warp.warp_id);
        for inst in &warp.instructions {
            let _ = write!(out, "{:04x} {:08x} {}", inst.pc, inst.mask, inst.dsts.len());
            for d in &inst.dsts {
                let _ = write!(out, " R{d}");
            }
            let _ = write!(out, " {} {}", inst.op.mnemonic(), inst.srcs.len());
            for s in &inst.srcs {
                let _ = write!(out, " R{s}");
            }
            let _ = write!(out, " {}", inst.mem_width);
            if inst.mem_width > 0 {
                for a in &inst.addresses {
                    let _ = write!(out, " 0x{a:x}");
                }
            }
            let _ = writeln!(out);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const SMALL: &str = "\
# a tiny two-warp trace
-kernel name = vecadd
-grid dim = (2,1,1)
-block dim = (64,1,1)
-nregs = 10
-shmem = 128

warp = 0
0000 ffffffff 1 R2 MOV 0 0
0008 ffffffff 1 R4 LDG.E 1 R2 4 0x10000000 0x10000004
0010 ffffffff 0 EXIT 0 0

warp = 1
0000 ffffffff 1 R2 MOV 0 0
0010 ffffffff 0 EXIT 0 0
";

    #[test]
    fn parses_header_and_streams() {
        let t = parse_str(SMALL).unwrap();
        assert_eq!(t.header.kernel_name, "vecadd");
        assert_eq!(t.header.grid_dim, (2, 1, 1));
        assert_eq!(t.header.blocks_per_grid(), 2);
        assert_eq!(t.header.warps_per_block(), 2);
        assert_eq!(t.header.nregs, 10);
        assert_eq!(t.header.shmem, 128);
        assert_eq!(t.warps.len(), 2);
        assert_eq!(t.warps[0].warp_id, 0);
        assert_eq!(t.record_count(), 5);
        let ldg = &t.warps[0].instructions[1];
        assert_eq!(ldg.pc, 8);
        assert_eq!(ldg.op, TraceOp::Op(Opcode::LoadGlobal));
        assert_eq!(ldg.dsts, vec![4]);
        assert_eq!(ldg.srcs, vec![2]);
        assert_eq!(ldg.addresses, vec![0x1000_0000, 0x1000_0004]);
        assert_eq!(t.warps[0].instructions[2].op, TraceOp::Exit);
    }

    #[test]
    fn writer_roundtrips() {
        let t = parse_str(SMALL).unwrap();
        let rendered = write_trace(&t);
        assert_eq!(parse_str(&rendered).unwrap(), t);
    }

    #[test]
    fn unknown_directives_are_ignored() {
        let padded = SMALL.replace(
            "-nregs = 10",
            "-binary version = 80\n-nregs = 10\n-local mem base addr = 0x7f0000",
        );
        assert_eq!(parse_str(&padded).unwrap(), parse_str(SMALL).unwrap());
    }

    #[test]
    fn typed_errors_for_malformed_input() {
        type ErrorCheck = fn(&TraceError) -> bool;
        let cases: &[(&str, ErrorCheck)] = &[
            ("", |e| matches!(e, TraceError::MissingHeader { .. })),
            ("-kernel name = k\n-grid dim = (1,1,1)\n-block dim = (32,1,1)\nwarp = 0\n0000 ff 0 NOP 0 0\n", |e| {
                matches!(e, TraceError::MissingHeader { directive: "-nregs" })
            }),
            ("-kernel name k\n", |e| matches!(e, TraceError::Syntax { line: 1, .. })),
            ("-grid dim = (1,1)\n", |e| matches!(e, TraceError::Syntax { .. })),
            ("-kernel name = k\n-grid dim = (1,1,1)\n-block dim = (32,1,1)\n-nregs = 8\n0000 ff 0 NOP 0 0\n", |e| {
                matches!(e, TraceError::Syntax { line: 5, .. })
            }),
            ("-kernel name = k\n-grid dim = (1,1,1)\n-block dim = (32,1,1)\n-nregs = 8\nwarp = 0\n0000 ff 0 FROB 0 0\n", |e| {
                matches!(e, TraceError::UnknownOpcode { line: 6, .. })
            }),
            ("-kernel name = k\n-grid dim = (1,1,1)\n-block dim = (32,1,1)\n-nregs = 8\nwarp = 0\n0000 ff 1 R900 MOV 0 0\n", |e| {
                matches!(e, TraceError::RegisterOutOfRange { register: 900, .. })
            }),
            ("-kernel name = k\n-grid dim = (1,1,1)\n-block dim = (32,1,1)\n-nregs = 8\nwarp = 0\n0000 ff 1 R1 MOV 0\n", |e| {
                matches!(e, TraceError::Syntax { .. })
            }),
            ("-kernel name = k\n-grid dim = (1,1,1)\n-block dim = (32,1,1)\n-nregs = 8\nwarp = 0\n", |e| {
                matches!(e, TraceError::EmptyTrace)
            }),
        ];
        for (source, matches_expected) in cases {
            let err = parse_str(source).expect_err(source);
            assert!(
                matches_expected(&err),
                "unexpected error {err:?} for {source:?}"
            );
        }
    }

    #[test]
    fn every_mnemonic_roundtrips_through_its_canonical_form() {
        for m in [
            "BRA", "EXIT", "IADD", "IMAD", "FADD", "FFMA", "MUFU", "MOV", "ISETP", "LDG", "LDS",
            "LDC", "LDL", "STG", "STS", "STL", "BAR", "NOP",
        ] {
            let op = TraceOp::from_mnemonic(m).unwrap();
            assert_eq!(TraceOp::from_mnemonic(op.mnemonic()), Some(op));
        }
    }
}
