//! Typed errors for trace ingestion.
//!
//! Every failure mode of the parser and the lowering pass is represented
//! here; malformed input must surface as one of these variants, never as a
//! panic (a property pinned by the crate's fuzzing tests).

use std::fmt;

/// Any error produced while reading, parsing, or lowering a trace.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceError {
    /// The trace file could not be read.
    Io {
        /// Path that failed to read.
        path: String,
        /// Operating-system error message.
        message: String,
    },
    /// A line did not match the trace grammar.
    Syntax {
        /// 1-based line number of the offending line.
        line: usize,
        /// What was wrong with it.
        message: String,
    },
    /// An instruction line used a mnemonic the lowering pass cannot map.
    UnknownOpcode {
        /// 1-based line number of the offending line.
        line: usize,
        /// The unrecognised mnemonic.
        opcode: String,
    },
    /// A register operand exceeds the architectural register space.
    RegisterOutOfRange {
        /// 1-based line number of the offending line.
        line: usize,
        /// The out-of-range register number.
        register: u64,
    },
    /// A required kernel-header directive never appeared.
    MissingHeader {
        /// The missing directive (e.g. `-nregs`).
        directive: &'static str,
    },
    /// The trace contains no warp streams, or its first stream is empty.
    EmptyTrace,
    /// The kernel declares or references more registers than the ISA allows.
    TooManyRegisters {
        /// The declared/derived per-thread register count.
        declared: u32,
    },
    /// The first warp stream is longer than the lowering bound allows.
    DynamicLimitExceeded {
        /// Number of instruction records in the stream.
        instructions: u64,
        /// The configured bound.
        limit: u64,
    },
    /// Lowering reconstructed more basic blocks than the bound allows.
    TooManyBlocks {
        /// Number of reconstructed blocks.
        blocks: usize,
        /// The configured bound.
        limit: usize,
    },
    /// The dynamic PC stream implies control flow the kernel IR cannot
    /// express (e.g. a three-way indirect branch).
    IrregularControlFlow {
        /// PC of the instruction with the irregular successor set.
        pc: u64,
        /// What was irregular about it.
        message: String,
    },
    /// The file's content no longer matches the fingerprint recorded in a
    /// [`TraceWorkloadId`](crate::TraceWorkloadId).
    ContentChanged {
        /// Path of the re-read file.
        path: String,
        /// Fingerprint recorded at identity-capture time.
        expected: String,
        /// Fingerprint of the file as it is now.
        actual: String,
    },
    /// The lowered control-flow graph failed kernel validation.
    Lowering {
        /// The underlying `ltrf-isa` validation error.
        message: String,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Io { path, message } => write!(f, "cannot read trace `{path}`: {message}"),
            TraceError::Syntax { line, message } => write!(f, "trace line {line}: {message}"),
            TraceError::UnknownOpcode { line, opcode } => {
                write!(f, "trace line {line}: unknown opcode `{opcode}`")
            }
            TraceError::RegisterOutOfRange { line, register } => {
                write!(f, "trace line {line}: register R{register} is out of range (max R255)")
            }
            TraceError::MissingHeader { directive } => {
                write!(f, "trace header is missing the `{directive}` directive")
            }
            TraceError::EmptyTrace => write!(f, "trace has no warp instruction records"),
            TraceError::TooManyRegisters { declared } => {
                write!(f, "trace kernel needs {declared} registers per thread (max 256)")
            }
            TraceError::DynamicLimitExceeded {
                instructions,
                limit,
            } => write!(
                f,
                "trace stream has {instructions} instructions, over the lowering bound of {limit}"
            ),
            TraceError::TooManyBlocks { blocks, limit } => write!(
                f,
                "trace lowers to {blocks} basic blocks, over the lowering bound of {limit}"
            ),
            TraceError::IrregularControlFlow { pc, message } => {
                write!(f, "irregular control flow at pc {pc:#06x}: {message}")
            }
            TraceError::ContentChanged {
                path,
                expected,
                actual,
            } => write!(
                f,
                "trace `{path}` changed on disk (fingerprint {actual}, identity recorded {expected})"
            ),
            TraceError::Lowering { message } => {
                write!(f, "lowered kernel failed validation: {message}")
            }
        }
    }
}

impl std::error::Error for TraceError {}
