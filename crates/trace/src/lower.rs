//! Lowering: from a dynamic per-warp PC stream to a structured kernel.
//!
//! The first warp stream of the trace acts as the control-flow witness. The
//! pass rebuilds a static program from the distinct PCs, splits it into basic
//! blocks at the targets and fall-throughs of observed control transfers, and
//! annotates every two-way branch with a [`BranchBehavior`] recovered from
//! the dynamic taken/not-taken counts (an exact `Loop { trip_count }` when
//! the pattern is a uniform counted loop, a `Probabilistic` rate otherwise).
//! Control records (`BRA`/`EXIT`) are materialised as `Nop` instructions in
//! front of their block terminator so the lowered kernel replays one dynamic
//! instruction per raw trace record — the property that lets tests pin the
//! replayed stream against the raw PC sequence.
//!
//! The simplifications relative to real accelsim semantics (single-warp
//! witness, ≤2-way branches, operand truncation) are catalogued in the
//! repository's `DESIGN.md`.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use ltrf_isa::trace::TraceWalker;
use ltrf_isa::{
    ArchReg, BlockId, BranchBehavior, Instruction, Kernel, KernelBuilder, LaunchConfig, Opcode,
    RegisterSensitivity,
};
use ltrf_workloads::MemoryProfile;

use crate::{LoweringBounds, TraceError, TraceFile, TraceInstruction, TraceOp};

/// Register count at and above which a lowered kernel is classified
/// register-sensitive (mirrors the workload generator's heuristic).
pub const SENSITIVITY_THRESHOLD_REGS: u16 = 40;

/// A lowered trace: the kernel plus the PC provenance of every instruction.
#[derive(Debug, Clone)]
pub struct LoweredKernel {
    /// The reconstructed kernel.
    pub kernel: Kernel,
    /// For each block (by index), the source PC of each instruction.
    pc_table: Vec<Vec<u64>>,
    /// Length of the witness warp stream, in dynamic instructions.
    dynamic_len: u64,
    /// The bounds the trace was lowered under.
    bounds: LoweringBounds,
}

impl LoweredKernel {
    /// The trace PC a lowered instruction came from.
    #[must_use]
    pub fn pc_of(&self, block: BlockId, index: usize) -> Option<u64> {
        self.pc_table.get(block.index())?.get(index).copied()
    }

    /// Number of dynamic instructions in the witness warp stream.
    #[must_use]
    pub fn dynamic_len(&self) -> u64 {
        self.dynamic_len
    }

    /// Replays the lowered kernel with a [`TraceWalker`] and returns the PC
    /// sequence it executes. For traces whose branches lower to exact
    /// (`Loop`/`AlwaysTaken`/`NeverTaken`) behaviors this reproduces the raw
    /// trace's PC stream record for record, independent of `seed`.
    #[must_use]
    pub fn replayed_pc_sequence(&self, seed: u64) -> Vec<u64> {
        let mut pcs = Vec::new();
        TraceWalker::new(&self.kernel, seed)
            .with_max_instructions(self.bounds.max_dynamic_instructions)
            .walk(|entry| {
                if let Some(pc) = self.pc_of(entry.block, entry.index) {
                    pcs.push(pc);
                }
            });
        pcs
    }
}

/// Classifies a trace's memory behaviour from its global-memory addresses.
///
/// High reuse of 128-byte lines means the footprint is cache-friendly;
/// a single consistent stride across consecutive accesses means streaming;
/// anything else is irregular. Traces without addresses default to
/// cache-resident (they exercise no memory system to speak of).
#[must_use]
pub fn memory_profile(trace: &TraceFile) -> MemoryProfile {
    const LINE_BYTES: u64 = 128;
    let addresses: Vec<u64> = trace
        .warps
        .iter()
        .flat_map(|w| w.instructions.iter())
        .filter(|i| {
            i.mem_width > 0
                && matches!(
                    i.op,
                    TraceOp::Op(Opcode::LoadGlobal) | TraceOp::Op(Opcode::StoreGlobal)
                )
        })
        .flat_map(|i| i.addresses.iter().copied())
        .collect();
    if addresses.is_empty() {
        return MemoryProfile::CacheResident;
    }
    let lines: BTreeSet<u64> = addresses.iter().map(|a| a / LINE_BYTES).collect();
    let reuse = addresses.len() as f64 / lines.len() as f64;
    if reuse >= 4.0 {
        return MemoryProfile::CacheResident;
    }
    let strided = addresses.len() >= 3
        && addresses
            .windows(2)
            .map(|w| w[1].wrapping_sub(w[0]))
            .collect::<BTreeSet<u64>>()
            .len()
            == 1;
    if strided {
        MemoryProfile::Streaming
    } else {
        MemoryProfile::Irregular
    }
}

/// Does this record end a basic block purely by virtue of its opcode?
fn is_control(op: TraceOp) -> bool {
    matches!(op, TraceOp::Branch | TraceOp::Exit)
}

/// The instruction a trace record lowers to. Control records become `Nop`s
/// so every raw record has a lowered counterpart (their transfer effect lives
/// in the block terminator); operand lists are truncated to the IR's limits.
fn lowered_instruction(record: &TraceInstruction) -> Instruction {
    let (opcode, dst, srcs): (Opcode, Option<u8>, &[u8]) = match record.op {
        TraceOp::Op(op) => (op, record.dsts.first().copied(), &record.srcs),
        TraceOp::Branch => (Opcode::Nop, None, &record.srcs),
        TraceOp::Exit => (Opcode::Nop, None, &[]),
    };
    let srcs: Vec<ArchReg> = srcs
        .iter()
        .take(Instruction::MAX_SOURCES)
        .map(|&r| ArchReg::new(r))
        .collect();
    Instruction::new(opcode, dst.map(ArchReg::new), &srcs)
}

/// Recovers a branch annotation from dynamic taken/not-taken counts.
fn branch_behavior(taken_count: u64, not_taken_count: u64, is_back_edge: bool) -> BranchBehavior {
    debug_assert!(taken_count > 0 && not_taken_count > 0);
    if is_back_edge && taken_count.is_multiple_of(not_taken_count) {
        let per_entry = taken_count / not_taken_count;
        if let Ok(trips) = u32::try_from(per_entry + 1) {
            return BranchBehavior::Loop { trip_count: trips };
        }
    }
    BranchBehavior::Probabilistic {
        taken_probability: taken_count as f64 / (taken_count + not_taken_count) as f64,
    }
}

/// Lowers a parsed trace to a kernel under the given bounds.
///
/// # Errors
///
/// Returns a typed [`TraceError`] when the stream exceeds the bounds, uses
/// more registers than the ISA allows, or implies control flow the kernel IR
/// cannot express.
pub fn lower(trace: &TraceFile, bounds: &LoweringBounds) -> Result<LoweredKernel, TraceError> {
    let stream = &trace
        .warps
        .first()
        .ok_or(TraceError::EmptyTrace)?
        .instructions;
    if stream.is_empty() {
        return Err(TraceError::EmptyTrace);
    }
    if stream.len() as u64 > bounds.max_dynamic_instructions {
        return Err(TraceError::DynamicLimitExceeded {
            instructions: stream.len() as u64,
            limit: bounds.max_dynamic_instructions,
        });
    }

    // Static program: first record per PC wins; later records must agree on
    // the operation (a disagreement means the stream is not a single kernel).
    let mut static_map: BTreeMap<u64, &TraceInstruction> = BTreeMap::new();
    for record in stream {
        match static_map.get(&record.pc) {
            None => {
                static_map.insert(record.pc, record);
            }
            Some(first) if first.op != record.op => {
                return Err(TraceError::IrregularControlFlow {
                    pc: record.pc,
                    message: format!(
                        "pc executes both {} and {}",
                        first.op.mnemonic(),
                        record.op.mnemonic()
                    ),
                });
            }
            Some(_) => {}
        }
    }

    // Fall-through successor of each static PC, and the observed dynamic
    // successor counts of each PC.
    let pcs: Vec<u64> = static_map.keys().copied().collect();
    let next_static: HashMap<u64, u64> = pcs.windows(2).map(|w| (w[0], w[1])).collect();
    let mut successors: HashMap<u64, BTreeMap<u64, u64>> = HashMap::new();
    for pair in stream.windows(2) {
        *successors
            .entry(pair[0].pc)
            .or_default()
            .entry(pair[1].pc)
            .or_insert(0) += 1;
    }
    let empty = BTreeMap::new();
    let succs_of = |pc: u64| successors.get(&pc).unwrap_or(&empty);

    // A PC ends its block if it is a control record or was ever observed
    // doing anything other than falling through.
    let ends_block = |pc: u64| {
        is_control(static_map[&pc].op)
            || succs_of(pc).len() > 1
            || succs_of(pc)
                .keys()
                .any(|&t| next_static.get(&pc) != Some(&t))
    };

    // Block leaders: the entry PC plus every observed transfer target.
    let mut leaders: BTreeSet<u64> = BTreeSet::new();
    leaders.insert(stream[0].pc);
    for &pc in &pcs {
        if ends_block(pc) {
            leaders.extend(succs_of(pc).keys().copied());
        }
    }

    // Split the sorted static program at the leaders.
    let mut blocks: Vec<Vec<u64>> = Vec::new();
    for &pc in &pcs {
        if leaders.contains(&pc) || blocks.is_empty() {
            blocks.push(Vec::new());
        }
        blocks.last_mut().expect("a block was just opened").push(pc);
    }
    // Only the last instruction of a block may transfer control; interior
    // transfers would mean the leader analysis above is inconsistent.
    for block in &blocks {
        for &pc in &block[..block.len() - 1] {
            if ends_block(pc) {
                return Err(TraceError::IrregularControlFlow {
                    pc,
                    message: "control transfer in the middle of a basic block".to_string(),
                });
            }
        }
    }
    if blocks.len() > bounds.max_blocks {
        return Err(TraceError::TooManyBlocks {
            blocks: blocks.len(),
            limit: bounds.max_blocks,
        });
    }

    // The builder's entry block must be the trace's entry block.
    let entry_pc = stream[0].pc;
    blocks.sort_by_key(|b| (b[0] != entry_pc, b[0]));

    // Per-thread register demand: the header's count or the largest register
    // actually referenced, whichever is larger.
    let max_reg = trace
        .warps
        .iter()
        .flat_map(|w| w.instructions.iter())
        .flat_map(|i| i.dsts.iter().chain(i.srcs.iter()))
        .copied()
        .max();
    let derived_regs = max_reg
        .map_or(0, |r| u32::from(r) + 1)
        .max(trace.header.nregs);
    if derived_regs > 256 {
        return Err(TraceError::TooManyRegisters {
            declared: derived_regs,
        });
    }
    let regs_per_thread = u16::try_from(derived_regs.max(1)).expect("bounded above by 256");

    let mut builder = KernelBuilder::new(trace.header.kernel_name.as_str(), regs_per_thread);
    builder.launch(LaunchConfig::new(
        trace.header.warps_per_block(),
        trace.header.blocks_per_grid(),
        trace.header.shmem,
    ));
    builder.sensitivity(if regs_per_thread >= SENSITIVITY_THRESHOLD_REGS {
        RegisterSensitivity::Sensitive
    } else {
        RegisterSensitivity::Insensitive
    });

    let mut block_ids: Vec<BlockId> = vec![builder.entry_block()];
    for _ in 1..blocks.len() {
        block_ids.push(builder.add_block());
    }
    let block_of: HashMap<u64, BlockId> = blocks
        .iter()
        .zip(&block_ids)
        .map(|(b, &id)| (b[0], id))
        .collect();

    let mut pc_table: Vec<Vec<u64>> = vec![Vec::new(); blocks.len()];
    for (block, &id) in blocks.iter().zip(&block_ids) {
        for &pc in block {
            builder.push_instruction(id, lowered_instruction(static_map[&pc]));
            pc_table[id.index()].push(pc);
        }

        let last = *block.last().expect("blocks are non-empty");
        let succs = succs_of(last);
        let resolve = |target: u64| {
            block_of
                .get(&target)
                .copied()
                .ok_or_else(|| TraceError::IrregularControlFlow {
                    pc: last,
                    message: format!("transfer to pc {target:#06x}, which is not a block leader"),
                })
        };
        match succs.len() {
            0 => {
                // End of the witness stream: an explicit EXIT, or a trace
                // that simply stops (treated as an implicit exit).
                builder.exit(id);
            }
            1 => {
                let (&target, _) = succs.iter().next().expect("len checked");
                if static_map[&last].op == TraceOp::Exit {
                    return Err(TraceError::IrregularControlFlow {
                        pc: last,
                        message: "EXIT record has a dynamic successor".to_string(),
                    });
                }
                builder.jump(id, resolve(target)?);
            }
            2 => {
                let fallthrough = next_static.get(&last).copied();
                let mut taken_pc = None;
                let mut taken_count = 0;
                let mut not_taken_count = 0;
                for (&target, &count) in succs {
                    if Some(target) == fallthrough {
                        not_taken_count = count;
                    } else {
                        taken_pc = Some(target);
                        taken_count = count;
                    }
                }
                let Some(taken) = taken_pc else {
                    return Err(TraceError::IrregularControlFlow {
                        pc: last,
                        message: "two-way transfer with two fall-through targets".to_string(),
                    });
                };
                if not_taken_count == 0 {
                    return Err(TraceError::IrregularControlFlow {
                        pc: last,
                        message: "two-way transfer with no fall-through target".to_string(),
                    });
                }
                let behavior = branch_behavior(taken_count, not_taken_count, taken <= last);
                let fallthrough = fallthrough.expect("not_taken_count > 0 implies a fall-through");
                builder.branch(id, resolve(taken)?, resolve(fallthrough)?, behavior);
            }
            n => {
                return Err(TraceError::IrregularControlFlow {
                    pc: last,
                    message: format!("{n}-way transfer cannot be expressed as a branch"),
                });
            }
        }
    }

    let kernel = builder.build().map_err(|e| TraceError::Lowering {
        message: e.to_string(),
    })?;
    Ok(LoweredKernel {
        kernel,
        pc_table,
        dynamic_len: stream.len() as u64,
        bounds: *bounds,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parse_str;

    fn lowered(source: &str) -> LoweredKernel {
        lower(&parse_str(source).unwrap(), &LoweringBounds::default()).unwrap()
    }

    const STRAIGHT: &str = "\
-kernel name = straight
-grid dim = (1,1,1)
-block dim = (32,1,1)
-nregs = 6
warp = 0
0000 ffffffff 1 R0 MOV 0 0
0008 ffffffff 1 R1 IADD 1 R0 0
0010 ffffffff 1 R2 FFMA 3 R0 R1 R2 0
0018 ffffffff 0 STG 2 R0 R2 4 0x20000000
0020 ffffffff 0 EXIT 0 0
";

    const LOOP: &str = "\
-kernel name = looped
-grid dim = (1,1,1)
-block dim = (32,1,1)
-nregs = 5
warp = 0
0000 ffffffff 1 R0 MOV 0 0
0008 ffffffff 1 R1 FADD 2 R1 R0 0
0010 ffffffff 1 R0 ISETP 1 R0 0
0018 ffffffff 0 BRA 0 0
0008 ffffffff 1 R1 FADD 2 R1 R0 0
0010 ffffffff 1 R0 ISETP 1 R0 0
0018 ffffffff 0 BRA 0 0
0008 ffffffff 1 R1 FADD 2 R1 R0 0
0010 ffffffff 1 R0 ISETP 1 R0 0
0018 ffffffff 0 BRA 0 0
0020 ffffffff 0 EXIT 0 0
";

    #[test]
    fn straight_line_lowers_to_one_block() {
        let l = lowered(STRAIGHT);
        assert_eq!(l.kernel.cfg.block_count(), 1);
        assert_eq!(l.kernel.static_instruction_count(), 5);
        assert_eq!(l.kernel.regs_per_thread(), 6);
        assert_eq!(l.dynamic_len(), 5);
        assert_eq!(l.replayed_pc_sequence(1), vec![0x0, 0x8, 0x10, 0x18, 0x20]);
    }

    #[test]
    fn counted_loop_recovers_a_loop_annotation() {
        let l = lowered(LOOP);
        // entry [0000], body [0008..0018], exit [0020]
        assert_eq!(l.kernel.cfg.block_count(), 3);
        let raw: Vec<u64> = parse_str(LOOP).unwrap().warps[0]
            .instructions
            .iter()
            .map(|i| i.pc)
            .collect();
        for seed in [1, 7, 99] {
            assert_eq!(l.replayed_pc_sequence(seed), raw, "seed {seed}");
        }
    }

    #[test]
    fn launch_and_sensitivity_come_from_the_header() {
        let l = lowered(STRAIGHT);
        assert_eq!(l.kernel.launch().warps_per_block, 1);
        assert_eq!(l.kernel.launch().blocks_per_grid, 1);
        assert_eq!(l.kernel.sensitivity(), RegisterSensitivity::Insensitive);

        let pressured = STRAIGHT.replace("-nregs = 6", "-nregs = 96");
        let l = lowered(&pressured);
        assert_eq!(l.kernel.regs_per_thread(), 96);
        assert_eq!(l.kernel.sensitivity(), RegisterSensitivity::Sensitive);
    }

    #[test]
    fn referenced_registers_can_exceed_the_header_count() {
        let bumped = STRAIGHT.replace("-nregs = 6", "-nregs = 2");
        assert_eq!(lowered(&bumped).kernel.regs_per_thread(), 3);
    }

    #[test]
    fn bounds_are_enforced() {
        let trace = parse_str(LOOP).unwrap();
        let err = lower(
            &trace,
            &LoweringBounds {
                max_dynamic_instructions: 4,
                ..LoweringBounds::default()
            },
        )
        .unwrap_err();
        assert!(matches!(
            err,
            TraceError::DynamicLimitExceeded { limit: 4, .. }
        ));

        let err = lower(
            &trace,
            &LoweringBounds {
                max_blocks: 2,
                ..LoweringBounds::default()
            },
        )
        .unwrap_err();
        assert!(matches!(
            err,
            TraceError::TooManyBlocks {
                blocks: 3,
                limit: 2
            }
        ));
    }

    #[test]
    fn memory_profiles_follow_the_address_stream() {
        assert_eq!(
            memory_profile(&parse_str(LOOP).unwrap()),
            MemoryProfile::CacheResident
        );

        let streaming = "\
-kernel name = s
-grid dim = (1,1,1)
-block dim = (32,1,1)
-nregs = 4
warp = 0
0000 ffffffff 1 R1 LDG 1 R0 4 0x1000
0008 ffffffff 1 R2 LDG 1 R0 4 0x2000
0010 ffffffff 1 R3 LDG 1 R0 4 0x3000
0018 ffffffff 0 EXIT 0 0
";
        assert_eq!(
            memory_profile(&parse_str(streaming).unwrap()),
            MemoryProfile::Streaming
        );

        let irregular = streaming.replace("0x3000", "0x9104");
        assert_eq!(
            memory_profile(&parse_str(&irregular).unwrap()),
            MemoryProfile::Irregular
        );

        let resident = streaming
            .replace("0x2000", "0x1004")
            .replace("0x3000", "0x1008")
            .replace("0x1000", "0x1000 0x100c");
        assert_eq!(
            memory_profile(&parse_str(&resident).unwrap()),
            MemoryProfile::CacheResident
        );
    }

    #[test]
    fn divergent_branches_become_probabilistic() {
        // A diamond inside a counted loop: the head branch goes each way
        // once, the latch loops back once before exiting.
        let diamond = "\
-kernel name = d
-grid dim = (1,1,1)
-block dim = (32,1,1)
-nregs = 4
warp = 0
0000 ffffffff 0 BRA 1 R0 0
0008 ffffffff 1 R1 IADD 0 0
0010 ffffffff 1 R2 IADD 0 0
0018 ffffffff 0 BRA 0 0
0000 ffffffff 0 BRA 1 R0 0
0010 ffffffff 1 R2 IADD 0 0
0018 ffffffff 0 BRA 0 0
0020 ffffffff 0 EXIT 0 0
";
        let trace = parse_str(diamond).unwrap();
        let l = lower(&trace, &LoweringBounds::default()).unwrap();
        // [0000] head, [0008] then-side, [0010,0018] join+latch, [0020] exit.
        assert_eq!(l.kernel.cfg.block_count(), 4);
        let head = l.kernel.cfg.block(BlockId(0));
        match head.terminator() {
            Some(ltrf_isa::Terminator::Branch { behavior, .. }) => {
                assert_eq!(
                    *behavior,
                    BranchBehavior::Probabilistic {
                        taken_probability: 0.5
                    }
                );
            }
            other => panic!("expected a branch terminator, got {other:?}"),
        }
    }

    #[test]
    fn irregular_control_flow_is_a_typed_error() {
        // pc 0000 transfers to three distinct targets.
        let indirect = "\
-kernel name = i
-grid dim = (1,1,1)
-block dim = (32,1,1)
-nregs = 4
warp = 0
0000 ffffffff 0 BRA 0 0
0008 ffffffff 1 R1 IADD 0 0
0000 ffffffff 0 BRA 0 0
0010 ffffffff 1 R1 IADD 0 0
0000 ffffffff 0 BRA 0 0
0018 ffffffff 0 EXIT 0 0
";
        let err = lower(&parse_str(indirect).unwrap(), &LoweringBounds::default()).unwrap_err();
        assert!(
            matches!(err, TraceError::IrregularControlFlow { pc: 0, .. }),
            "{err:?}"
        );
    }
}
