//! # ltrf-trace
//!
//! Accelsim-style kernel-trace ingestion for the LTRF reproduction.
//!
//! The synthetic suite (`ltrf-workloads`) covers the paper's fourteen
//! benchmarks, but only with register-pressure patterns it can fabricate.
//! This crate opens the simulator to *recorded* workloads: it parses
//! line-oriented kernel traces in the accelsim style (a launch header plus
//! per-warp dynamic instruction records), lowers the dynamic PC stream back
//! into a structured `ltrf-isa` [`Kernel`](ltrf_isa::Kernel) — basic blocks,
//! terminators, and [`BranchBehavior`](ltrf_isa::BranchBehavior) annotations
//! recovered from observed taken/not-taken counts — and wraps the result in
//! the same [`Workload`](ltrf_workloads::Workload) interface the suites
//! expose, so every downstream layer (compiler passes, timing simulator,
//! sweep engine) runs traces unchanged.
//!
//! * [`parse_str`] / [`parse::write_trace`] — the grammar frontend,
//! * [`lower()`] / [`LoweredKernel`] — CFG reconstruction with PC provenance,
//! * [`TraceWorkloadId`] — durable identity (path + content fingerprint +
//!   [`LoweringBounds`]) that sweep points serialize into cache keys, and
//!   [`TraceWorkloadId::materialize`] to rebuild the workload on demand.
//!
//! Every failure mode is a typed [`TraceError`]; malformed input never
//! panics. The trace grammar is documented in `REPRODUCING.md`, and the
//! deliberate simplifications relative to real accelsim semantics in
//! `DESIGN.md`.
//!
//! ```
//! let source = "\
//! -kernel name = saxpy
//! -grid dim = (2,1,1)
//! -block dim = (64,1,1)
//! -nregs = 8
//! warp = 0
//! 0000 ffffffff 1 R2 LDG 1 R0 4 0x1000
//! 0008 ffffffff 1 R3 FFMA 3 R1 R2 R3 0
//! 0010 ffffffff 0 STG 2 R0 R3 4 0x2000
//! 0018 ffffffff 0 EXIT 0 0
//! ";
//! let trace = ltrf_trace::parse_str(source).unwrap();
//! let lowered = ltrf_trace::lower(&trace, &ltrf_trace::LoweringBounds::default()).unwrap();
//! assert_eq!(lowered.kernel.cfg.block_count(), 1);
//! assert_eq!(lowered.replayed_pc_sequence(1), vec![0x0, 0x8, 0x10, 0x18]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod error;
pub mod lower;
pub mod parse;
mod workload;

pub use error::TraceError;
pub use lower::{lower, memory_profile, LoweredKernel, SENSITIVITY_THRESHOLD_REGS};
pub use parse::{
    parse_str, write_trace, KernelHeader, TraceFile, TraceInstruction, TraceOp, WarpStream,
};
pub use workload::{content_fingerprint, LoweringBounds, TraceWorkloadId};
