//! Property tests for the trace parser.
//!
//! * Roundtrip: any well-formed trace survives `write_trace` → `parse_str`
//!   structurally unchanged.
//! * Fuzzing: arbitrary bytes and mutilated variants of a valid trace must
//!   produce a typed [`TraceError`](ltrf_trace::TraceError) — never a panic.

use ltrf_isa::Opcode;
use ltrf_trace::{
    parse_str, write_trace, KernelHeader, TraceFile, TraceInstruction, TraceOp, WarpStream,
};
use proptest::collection;
use proptest::prelude::*;

/// A tiny deterministic generator (xorshift64*) so traces of arbitrary shape
/// can be derived from a single proptest-supplied seed.
struct Gen(u64);

impl Gen {
    fn next(&mut self) -> u64 {
        let mut x = self.0.max(1);
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

const OPS: [TraceOp; 18] = [
    TraceOp::Branch,
    TraceOp::Exit,
    TraceOp::Op(Opcode::IAlu),
    TraceOp::Op(Opcode::IMul),
    TraceOp::Op(Opcode::FAlu),
    TraceOp::Op(Opcode::FFma),
    TraceOp::Op(Opcode::Sfu),
    TraceOp::Op(Opcode::Mov),
    TraceOp::Op(Opcode::SetP),
    TraceOp::Op(Opcode::LoadGlobal),
    TraceOp::Op(Opcode::LoadShared),
    TraceOp::Op(Opcode::LoadConst),
    TraceOp::Op(Opcode::LoadLocal),
    TraceOp::Op(Opcode::StoreGlobal),
    TraceOp::Op(Opcode::StoreShared),
    TraceOp::Op(Opcode::StoreLocal),
    TraceOp::Op(Opcode::Barrier),
    TraceOp::Op(Opcode::Nop),
];

/// Derives a structurally valid trace of pseudo-random shape from a seed.
fn trace_from_seed(seed: u64) -> TraceFile {
    let mut g = Gen(seed);
    let warp_count = 1 + g.below(3) as usize;
    let warps = (0..warp_count)
        .map(|w| {
            let len = 1 + g.below(12) as usize;
            let instructions = (0..len)
                .map(|i| {
                    let op = OPS[g.below(OPS.len() as u64) as usize];
                    let mem_width = if g.below(3) == 0 { 4 } else { 0 };
                    let addresses = if mem_width > 0 {
                        (0..g.below(5)).map(|_| g.next() >> 16).collect()
                    } else {
                        Vec::new()
                    };
                    TraceInstruction {
                        pc: (i as u64) * 8,
                        mask: g.next() as u32,
                        dsts: (0..g.below(3)).map(|_| g.below(256) as u8).collect(),
                        op,
                        srcs: (0..g.below(5)).map(|_| g.below(256) as u8).collect(),
                        mem_width,
                        addresses,
                    }
                })
                .collect();
            WarpStream {
                warp_id: w as u32,
                instructions,
            }
        })
        .collect();
    TraceFile {
        header: KernelHeader {
            kernel_name: format!("gen{}", g.below(1000)),
            grid_dim: (1 + g.below(16) as u32, 1 + g.below(4) as u32, 1),
            block_dim: (32 * (1 + g.below(8) as u32), 1, 1),
            nregs: g.below(256) as u32,
            shmem: (g.below(64) * 256) as u32,
        },
        warps,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Generated traces roundtrip through the writer and back, bit-equal as
    /// structures.
    #[test]
    fn writer_parser_roundtrip(seed in any::<u64>()) {
        let trace = trace_from_seed(seed);
        let rendered = write_trace(&trace);
        let reparsed = parse_str(&rendered);
        prop_assert_eq!(reparsed.as_ref(), Ok(&trace), "rendered:\n{}", rendered);
    }

    /// Arbitrary bytes never panic the parser; they parse or fail typed.
    #[test]
    fn arbitrary_bytes_never_panic(bytes in collection::vec(any::<u8>(), 0..512)) {
        let text = String::from_utf8_lossy(&bytes);
        let _ = parse_str(&text);
    }

    /// Mutilating a valid trace (truncating a line, splicing in garbage
    /// tokens) never panics; failures surface as typed errors.
    #[test]
    fn mutilated_traces_fail_typed(seed in any::<u64>(), cut in 0usize..6000, splice in any::<u16>()) {
        let rendered = write_trace(&trace_from_seed(seed));

        // Truncate the file at an arbitrary char boundary.
        let cut = cut.min(rendered.len());
        let truncated: String = rendered.chars().take(cut).collect();
        let _ = parse_str(&truncated);

        // Replace one line with garbage tokens.
        let mut lines: Vec<String> = rendered.lines().map(str::to_string).collect();
        if !lines.is_empty() {
            let idx = (seed as usize) % lines.len();
            lines[idx] = format!("{splice} zz R999 ???");
            let mutated = lines.join("\n");
            let _ = parse_str(&mutated);
        }
    }
}
