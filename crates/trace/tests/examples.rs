//! The checked-in example traces under `examples/traces/` must parse, lower,
//! and — where their recovered branch behaviors are exact — replay to the
//! very PC sequence recorded in the file. These are the traces the docs and
//! the default `sweep trace-campaign` invocation use.

use std::path::PathBuf;

use ltrf_trace::{lower, parse_str, LoweringBounds, TraceWorkloadId};
use ltrf_workloads::MemoryProfile;

fn example(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join(format!("../../examples/traces/{name}"))
}

fn read_example(name: &str) -> String {
    let path = example(name);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {}: {e}", path.display()))
}

fn raw_pc_stream(source: &str) -> Vec<u64> {
    parse_str(source).unwrap().warps[0]
        .instructions
        .iter()
        .map(|i| i.pc)
        .collect()
}

/// Traces whose branches all lower to exact behaviors (loops, unconditional
/// transfers) replay the raw dynamic instruction stream record for record.
#[test]
fn exact_traces_replay_their_raw_pc_sequence() {
    for name in ["straight_line.trace", "high_register_pressure.trace"] {
        let source = read_example(name);
        let lowered = lower(&parse_str(&source).unwrap(), &LoweringBounds::default()).unwrap();
        let raw = raw_pc_stream(&source);
        for seed in [1u64, 42, 0xDEAD] {
            assert_eq!(
                lowered.replayed_pc_sequence(seed),
                raw,
                "{name} replay diverges from the raw trace (seed {seed})"
            );
        }
    }
}

#[test]
fn straight_line_is_one_streaming_block() {
    let source = read_example("straight_line.trace");
    let trace = parse_str(&source).unwrap();
    let lowered = lower(&trace, &LoweringBounds::default()).unwrap();
    assert_eq!(lowered.kernel.cfg.block_count(), 1);
    assert_eq!(lowered.kernel.regs_per_thread(), 12);
    assert!(!lowered.kernel.is_register_sensitive());
    assert_eq!(ltrf_trace::memory_profile(&trace), MemoryProfile::Streaming);
}

#[test]
fn divergent_loop_recovers_loop_and_divergence() {
    let source = read_example("divergent_loop.trace");
    let trace = parse_str(&source).unwrap();
    let lowered = lower(&trace, &LoweringBounds::default()).unwrap();
    assert_eq!(ltrf_trace::memory_profile(&trace), MemoryProfile::Irregular);
    // Head block [0008,0010], then-side, join/latch, plus entry and exit.
    assert_eq!(lowered.kernel.cfg.block_count(), 5);
    // Whatever path the probabilistic diamond takes, the recovered Loop(4)
    // latch runs the loop exactly four times and the kernel exits at 0x40.
    for seed in [3u64, 17, 1234] {
        let pcs = lowered.replayed_pc_sequence(seed);
        let head_visits = pcs.iter().filter(|&&pc| pc == 0x8).count();
        assert_eq!(head_visits, 4, "loop trip count (seed {seed})");
        assert_eq!(pcs.first(), Some(&0x0));
        assert_eq!(pcs.last(), Some(&0x40));
    }
}

#[test]
fn high_register_pressure_is_sensitive() {
    let source = read_example("high_register_pressure.trace");
    let trace = parse_str(&source).unwrap();
    let lowered = lower(&trace, &LoweringBounds::default()).unwrap();
    assert_eq!(lowered.kernel.regs_per_thread(), 64);
    assert!(lowered.kernel.is_register_sensitive());
    assert_eq!(
        ltrf_trace::memory_profile(&trace),
        MemoryProfile::CacheResident
    );
    assert_eq!(lowered.kernel.launch().warps_per_block, 8);
    assert_eq!(lowered.kernel.launch().blocks_per_grid, 2);
}

/// The example traces materialize through the sweep-facing identity type,
/// exactly as `sweep trace-campaign` consumes them.
#[test]
fn examples_materialize_as_workloads() {
    for (name, expected) in [
        ("straight_line.trace", "trace:straight_line"),
        ("divergent_loop.trace", "trace:divergent_loop"),
        (
            "high_register_pressure.trace",
            "trace:high_register_pressure",
        ),
    ] {
        let id = TraceWorkloadId::from_path(example(name)).unwrap();
        assert_eq!(id.workload_name(), expected);
        let workload = id.materialize().unwrap();
        assert_eq!(workload.name(), expected);
        assert!(workload.kernel.static_instruction_count() > 0);
    }
}
