//! Property-based tests for the fast engine's event/wakeup queue.
//!
//! The queue is the piece of the skip-ahead core where a subtle ordering bug
//! would silently break bit-identity with the reference engine, so its
//! contract is pinned directly: arbitrary `(wakeup_cycle, warp)` insertion
//! orders must drain in deterministic `(cycle, warp)` order, no warp may be
//! lost or woken early, and the skip-ahead horizon must never jump past a
//! pending service completion (a DRAM/L2 wakeup still in the future).

use ltrf_sim::{WakeupQueue, WarpId};
use proptest::prelude::*;

/// An arbitrary batch of wakeup events: distinct warp ids paired with
/// arbitrary wakeup cycles, in arbitrary insertion order.
fn arb_events() -> impl Strategy<Value = Vec<(u64, u32)>> {
    proptest::collection::vec(0u64..500, 0..40).prop_map(|cycles| {
        cycles
            .into_iter()
            .enumerate()
            .map(|(warp, at)| (at, warp as u32))
            .collect()
    })
}

proptest! {
    /// Draining at a late-enough cycle yields every event exactly once, in
    /// ascending `(cycle, warp)` order, regardless of insertion order.
    #[test]
    fn drains_in_deterministic_cycle_order(events in arb_events()) {
        let mut q = WakeupQueue::new();
        for &(at, warp) in &events {
            q.push(at, WarpId(warp));
        }
        prop_assert_eq!(q.len(), events.len());
        let horizon = events.iter().map(|&(at, _)| at).max().unwrap_or(0);
        let mut drained = Vec::new();
        while let Some(w) = q.pop_eligible(horizon) {
            drained.push(w);
        }
        prop_assert!(q.is_empty());
        let mut expected = events.clone();
        expected.sort_unstable();
        let expected: Vec<WarpId> = expected.into_iter().map(|(_, w)| WarpId(w)).collect();
        prop_assert_eq!(drained, expected, "drain order must be (cycle, warp)-sorted");
    }

    /// No warp is woken before its cycle, and none is lost: popping at each
    /// cycle step in turn yields exactly the events due by then.
    #[test]
    fn no_warp_lost_or_woken_early(events in arb_events()) {
        let mut q = WakeupQueue::new();
        for &(at, warp) in &events {
            q.push(at, WarpId(warp));
        }
        let horizon = events.iter().map(|&(at, _)| at).max().unwrap_or(0);
        let mut seen: Vec<(u64, u32)> = Vec::new();
        for now in 0..=horizon {
            while let Some(w) = q.pop_eligible(now) {
                let &(at, _) = events
                    .iter()
                    .find(|&&(_, warp)| warp == w.0)
                    .expect("popped warp was pushed");
                prop_assert!(at <= now, "warp {} woken at {} before its cycle {}", w.0, now, at);
                seen.push((at, w.0));
            }
        }
        prop_assert!(q.is_empty(), "every pushed warp must eventually drain");
        prop_assert_eq!(seen.len(), events.len());
        let mut expected = events.clone();
        expected.sort_unstable();
        prop_assert_eq!(seen, expected);
    }

    /// The skip-ahead horizon never jumps past a pending completion: from any
    /// `now`, `next_wake_after` is exactly the earliest strictly-future
    /// wakeup, and due-but-unadmitted warps do not shorten (or extend) it.
    #[test]
    fn skip_ahead_never_jumps_past_a_pending_completion(events in arb_events(), now in 0u64..600) {
        let mut q = WakeupQueue::new();
        for &(at, warp) in &events {
            q.push(at, WarpId(warp));
        }
        let expected = events.iter().map(|&(at, _)| at).filter(|&at| at > now).min();
        prop_assert_eq!(q.next_wake_after(now), expected);
        // The due entries are all still there (eligible, not dropped).
        let due = events.iter().filter(|&&(at, _)| at <= now).count();
        let mut popped = 0;
        while q.pop_eligible(now).is_some() {
            popped += 1;
        }
        prop_assert_eq!(popped, due);
    }

    /// The queue is insertion-order oblivious: any two insertion orders of
    /// the same events produce identical pop sequences under an identical,
    /// arbitrary schedule of queries.
    #[test]
    fn insertion_order_is_unobservable(events in arb_events(), shuffle_seed in any::<u64>()) {
        let mut shuffled = events.clone();
        // Deterministic Fisher-Yates driven by the seed.
        let mut state = shuffle_seed | 1;
        for i in (1..shuffled.len()).rev() {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            shuffled.swap(i, (state % (i as u64 + 1)) as usize);
        }
        let mut a = WakeupQueue::new();
        let mut b = WakeupQueue::new();
        for &(at, warp) in &events {
            a.push(at, WarpId(warp));
        }
        for &(at, warp) in &shuffled {
            b.push(at, WarpId(warp));
        }
        let horizon = events.iter().map(|&(at, _)| at).max().unwrap_or(0);
        for now in (0..=horizon).step_by(7) {
            prop_assert_eq!(a.next_wake_after(now), b.next_wake_after(now));
            prop_assert_eq!(a.pop_eligible(now), b.pop_eligible(now));
        }
        while !a.is_empty() || !b.is_empty() {
            prop_assert_eq!(a.pop_eligible(horizon), b.pop_eligible(horizon));
        }
    }
}
