//! Per-warp execution state.

use std::collections::HashMap;

use ltrf_isa::trace::BranchRng;
use ltrf_isa::{ArchReg, BlockId, BranchBehavior, Kernel, Terminator};

use crate::types::Cycle;

/// Why a warp is not currently issuing instructions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WarpStatus {
    /// Ready to issue its next instruction.
    Ready,
    /// Stalled until the given cycle (prefetch, operand collection, or a
    /// long-latency operation while the warp stays active).
    StalledUntil(Cycle),
    /// Demoted from the active pool until its pending operation completes at
    /// the given cycle.
    InactiveUntil(Cycle),
    /// Waiting to be admitted into the active pool (eligible, not yet
    /// selected).
    Pending,
    /// Finished executing the kernel.
    Finished,
}

/// The architectural and micro-architectural state of one warp.
#[derive(Debug)]
pub struct WarpContext {
    /// Current basic block.
    pub block: BlockId,
    /// Index of the next instruction within the block.
    pub pc: usize,
    /// Scheduling status.
    pub status: WarpStatus,
    /// Registers with in-flight writes and their ready cycles (scoreboard).
    pending_writes: HashMap<ArchReg, Cycle>,
    /// Per-block remaining loop iterations for `BranchBehavior::Loop`.
    loop_remaining: HashMap<BlockId, u32>,
    /// Deterministic RNG for probabilistic branches.
    rng: BranchRng,
    /// Dynamic instructions executed by this warp.
    pub instructions_executed: u64,
}

impl WarpContext {
    /// Creates a warp positioned at the kernel entry.
    #[must_use]
    pub fn new(kernel: &Kernel, seed: u64) -> Self {
        WarpContext {
            block: kernel.cfg.entry(),
            pc: 0,
            status: WarpStatus::Pending,
            pending_writes: HashMap::new(),
            loop_remaining: HashMap::new(),
            rng: BranchRng::new(seed),
            instructions_executed: 0,
        }
    }

    /// Returns `true` if the warp has finished the kernel.
    #[must_use]
    pub fn is_finished(&self) -> bool {
        matches!(self.status, WarpStatus::Finished)
    }

    /// Returns `true` if every source and the destination of the instruction
    /// are free of pending writes at `now` (RAW/WAW check), dropping
    /// completed entries as a side effect.
    pub fn scoreboard_ready(
        &mut self,
        reads: &ltrf_isa::RegSet,
        dst: Option<ArchReg>,
        now: Cycle,
    ) -> bool {
        self.pending_writes.retain(|_, &mut ready| ready > now);
        for r in reads.iter() {
            if self.pending_writes.contains_key(&r) {
                return false;
            }
        }
        if let Some(d) = dst {
            if self.pending_writes.contains_key(&d) {
                return false;
            }
        }
        true
    }

    /// Earliest cycle at which all scoreboard hazards for the instruction
    /// clear (used to fast-forward idle cycles).
    #[must_use]
    pub fn scoreboard_ready_at(&self, reads: &ltrf_isa::RegSet, dst: Option<ArchReg>) -> Cycle {
        let mut ready = 0;
        for (&reg, &cycle) in &self.pending_writes {
            if reads.contains(reg) || dst == Some(reg) {
                ready = ready.max(cycle);
            }
        }
        ready
    }

    /// Records a pending write of `reg` completing at `ready`.
    pub fn record_pending_write(&mut self, reg: ArchReg, ready: Cycle) {
        let entry = self.pending_writes.entry(reg).or_insert(ready);
        *entry = (*entry).max(ready);
    }

    /// Number of writes still in flight at `now`.
    #[must_use]
    pub fn pending_write_count(&self, now: Cycle) -> usize {
        self.pending_writes.values().filter(|&&c| c > now).count()
    }

    /// Advances control flow past the current block's terminator. Returns the
    /// next block, or `None` if the warp exits the kernel.
    ///
    /// # Panics
    ///
    /// Panics if the current block has no terminator (kernels are validated,
    /// so this indicates a simulator bug).
    pub fn take_branch(&mut self, kernel: &Kernel) -> Option<BlockId> {
        let block = kernel.cfg.block(self.block);
        match *block.terminator().expect("validated kernel") {
            Terminator::Exit => None,
            Terminator::Jump(t) => Some(t),
            Terminator::Branch {
                taken,
                not_taken,
                behavior,
            } => {
                let take = match behavior {
                    BranchBehavior::AlwaysTaken => true,
                    BranchBehavior::NeverTaken => false,
                    BranchBehavior::Probabilistic { taken_probability } => {
                        self.rng.chance(taken_probability)
                    }
                    BranchBehavior::Loop { trip_count } => {
                        let remaining = self
                            .loop_remaining
                            .entry(self.block)
                            .or_insert_with(|| trip_count.saturating_sub(1));
                        if *remaining > 0 {
                            *remaining -= 1;
                            true
                        } else {
                            self.loop_remaining.remove(&self.block);
                            false
                        }
                    }
                };
                Some(if take { taken } else { not_taken })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ltrf_isa::{straight_line_kernel, ArchReg, KernelBuilder, Opcode, RegSet};

    #[test]
    fn new_warp_starts_pending_at_entry() {
        let k = straight_line_kernel("k", 4, 10);
        let w = WarpContext::new(&k, 1);
        assert_eq!(w.block, k.cfg.entry());
        assert_eq!(w.pc, 0);
        assert_eq!(w.status, WarpStatus::Pending);
        assert!(!w.is_finished());
    }

    #[test]
    fn scoreboard_blocks_raw_hazards() {
        let k = straight_line_kernel("k", 4, 10);
        let mut w = WarpContext::new(&k, 1);
        w.record_pending_write(ArchReg::new(1), 100);
        let reads: RegSet = [ArchReg::new(1)].into_iter().collect();
        assert!(!w.scoreboard_ready(&reads, None, 50));
        assert_eq!(w.scoreboard_ready_at(&reads, None), 100);
        assert!(
            w.scoreboard_ready(&reads, None, 100),
            "hazard clears at the ready cycle"
        );
    }

    #[test]
    fn scoreboard_blocks_waw_hazards() {
        let k = straight_line_kernel("k", 4, 10);
        let mut w = WarpContext::new(&k, 1);
        w.record_pending_write(ArchReg::new(2), 60);
        assert!(!w.scoreboard_ready(&RegSet::new(), Some(ArchReg::new(2)), 10));
        assert!(w.scoreboard_ready(&RegSet::new(), Some(ArchReg::new(3)), 10));
        assert_eq!(w.pending_write_count(10), 1);
        assert_eq!(w.pending_write_count(61), 0);
    }

    #[test]
    fn branch_loop_counts_match_trip_count() {
        let mut b = KernelBuilder::new("loop", 4);
        let entry = b.entry_block();
        let body = b.add_block();
        let exit = b.add_block();
        b.jump(entry, body);
        b.push(body, Opcode::IAlu, Some(ArchReg::new(0)), &[]);
        b.loop_branch(body, body, exit, 3);
        b.exit(exit);
        let k = b.build().unwrap();
        let mut w = WarpContext::new(&k, 1);
        w.block = body;
        assert_eq!(w.take_branch(&k), Some(body));
        w.block = body;
        assert_eq!(w.take_branch(&k), Some(body));
        w.block = body;
        assert_eq!(
            w.take_branch(&k),
            Some(exit),
            "third evaluation falls through"
        );
        w.block = exit;
        assert_eq!(w.take_branch(&k), None);
    }
}
