//! The SM pipeline: issue, operand collection, execution, memory, and the
//! two-level warp scheduler.
//!
//! The engine models one streaming multiprocessor at cycle granularity:
//!
//! * up to [`SmConfig::max_warps`] warps are resident, further limited by the
//!   register-file capacity and the kernel's launch size;
//! * a two-level scheduler keeps [`SmConfig::active_warps`] warps in the
//!   active pool; a warp that issues a long-latency operation (global/local
//!   memory access or barrier) is demoted and another eligible warp is
//!   promoted, paying whatever activation cost the register-file organization
//!   charges;
//! * each issued instruction allocates an operand-collector slot until its
//!   source operands have been gathered from the register-file organization
//!   (which models register-cache hits, main-register-file latency, and bank
//!   conflicts);
//! * execution latency depends on the opcode class; loads and stores travel
//!   through the L1 → LLC → DRAM hierarchy;
//! * a per-register scoreboard enforces RAW/WAW ordering inside each warp.
//!
//! Simplifications relative to GPGPU-Sim, none of which change which
//! register-file organization wins: barriers are modelled as a fixed
//! long-latency operation rather than an inter-warp rendezvous, and only one
//! "wave" of resident warps is executed per kernel. [`simulate`] runs one SM
//! (the paper's workloads behave homogeneously across SMs, so single-SM
//! campaigns remain representative for register-file comparisons); the
//! multi-SM mode in [`crate::gpu`] drives several of these engines in
//! lock-step over a shared L2/DRAM when chip-level memory contention
//! matters.

use ltrf_isa::{Kernel, Opcode, OpcodeClass};

use crate::config::SmConfig;
use crate::driver::{self, SmEngine};
use crate::fast::FastEngine;
use crate::memory::{AddressGenerator, MemoryBehavior, MemoryHierarchy};
use crate::regfile::RegisterFileModel;
use crate::stats::SimStats;
use crate::types::{Cycle, WarpId};
use crate::warp::{WarpContext, WarpStatus};

/// A kernel plus the synthetic memory behaviour it exercises.
#[derive(Debug, Clone)]
pub struct SimWorkload {
    /// The kernel to execute.
    pub kernel: Kernel,
    /// Global-memory access behaviour.
    pub memory: MemoryBehavior,
    /// Seed for branch resolution and address generation.
    pub seed: u64,
}

impl SimWorkload {
    /// Creates a workload with the default streaming memory behaviour.
    #[must_use]
    pub fn new(kernel: Kernel) -> Self {
        SimWorkload {
            kernel,
            memory: MemoryBehavior::default(),
            seed: 0xC0FFEE,
        }
    }

    /// Sets the memory behaviour.
    #[must_use]
    pub fn with_memory(mut self, memory: MemoryBehavior) -> Self {
        self.memory = memory;
        self
    }

    /// Sets the simulation seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Selects which SM engine implementation executes a simulation.
///
/// Both implementations produce bit-identical statistics — the differential
/// test layer in `crates/core/tests/` pins exact `f64` equality on every
/// field — so the choice only affects wall-clock speed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EngineKind {
    /// The allocation-free, skip-ahead engine (`fast.rs`); the default.
    #[default]
    Fast,
    /// The straightforward tick loop, kept as the differential oracle.
    Reference,
}

/// Runs `workload` on one SM with the given register-file organization,
/// using the default (fast) engine.
pub fn simulate(
    workload: &SimWorkload,
    config: &SmConfig,
    regfile: &mut dyn RegisterFileModel,
) -> SimStats {
    simulate_with(workload, config, regfile, EngineKind::default())
}

/// Runs `workload` on one SM with an explicitly chosen engine
/// implementation. [`EngineKind::Reference`] exists for differential testing
/// and debugging; it is never faster.
pub fn simulate_with(
    workload: &SimWorkload,
    config: &SmConfig,
    regfile: &mut dyn RegisterFileModel,
    kind: EngineKind,
) -> SimStats {
    match kind {
        EngineKind::Fast => driver::run_single(
            FastEngine::new(workload, config, regfile),
            config.max_cycles,
        ),
        EngineKind::Reference => {
            driver::run_single(Engine::new(workload, config, regfile), config.max_cycles)
        }
    }
}

/// The per-SM pipeline state machine.
///
/// Private to the crate: [`simulate`] drives one engine to completion with
/// idle-period fast-forwarding, and [`crate::gpu`] steps several engines in
/// lock-step over shared memory. The two drivers use the same issue /
/// refill / next-event primitives, so an `sm_count = 1` GPU and the classic
/// single-SM simulation execute identical cycle-by-cycle schedules.
pub(crate) struct Engine<'a> {
    kernel: &'a Kernel,
    config: &'a SmConfig,
    regfile: &'a mut dyn RegisterFileModel,
    memory: MemoryHierarchy,
    addresses: AddressGenerator,
    warps: Vec<WarpContext>,
    active: Vec<WarpId>,
    collectors: Vec<Cycle>,
    stats: SimStats,
    finished: usize,
}

impl<'a> Engine<'a> {
    pub(crate) fn new(
        workload: &'a SimWorkload,
        config: &'a SmConfig,
        regfile: &'a mut dyn RegisterFileModel,
    ) -> Self {
        let kernel = &workload.kernel;
        let launch_warps = kernel.launch().total_warps().min(usize::MAX as u64) as usize;
        let resident = config
            .resident_warps(kernel.regs_per_thread())
            .min(launch_warps.max(1));
        let seeds: Vec<u64> = (0..resident as u64)
            .map(|i| workload.seed ^ (0x9E37 + i * 0x85EB_CA6B))
            .collect();
        <Engine as SmEngine>::with_parts(
            kernel,
            config,
            regfile,
            MemoryHierarchy::new(&config.memory),
            AddressGenerator::new(workload.memory, resident, workload.seed),
            &seeds,
        )
    }

    /// Attempts to issue one instruction from `warp_id`. Returns `true` on
    /// success.
    fn try_issue(&mut self, warp_id: WarpId, cycle: Cycle) -> bool {
        // Resolve stalls.
        match self.warps[warp_id.index()].status {
            WarpStatus::StalledUntil(t) if t <= cycle => {
                self.warps[warp_id.index()].status = WarpStatus::Ready;
            }
            WarpStatus::Ready => {}
            _ => return false,
        }

        // Advance through terminators / empty blocks until an instruction is
        // available or the warp finishes or stalls on a PREFETCH.
        let mut guard = 0usize;
        loop {
            let warp = &self.warps[warp_id.index()];
            let block = self.kernel.cfg.block(warp.block);
            if warp.pc < block.len() {
                break;
            }
            guard += 1;
            if guard > self.kernel.cfg.block_count() + 1 {
                // Pathological empty-block cycle; treat the warp as finished
                // so the simulation terminates.
                self.retire_warp(warp_id, cycle);
                return false;
            }
            let next = self.warps[warp_id.index()].take_branch(self.kernel);
            match next {
                None => {
                    self.retire_warp(warp_id, cycle);
                    return false;
                }
                Some(next_block) => {
                    let ready = self.regfile.block_entered(warp_id, next_block, cycle);
                    let warp = &mut self.warps[warp_id.index()];
                    warp.block = next_block;
                    warp.pc = 0;
                    if ready > cycle {
                        warp.status = WarpStatus::StalledUntil(ready);
                        return false;
                    }
                }
            }
        }

        // Fetch the instruction.
        let (opcode, reads, dst, dying) = {
            let warp = &self.warps[warp_id.index()];
            let inst = &self.kernel.cfg.block(warp.block).instructions()[warp.pc];
            (
                inst.opcode(),
                inst.reads(),
                inst.dst(),
                inst.dying_registers(),
            )
        };

        // Scoreboard check.
        if !self.warps[warp_id.index()].scoreboard_ready(&reads, dst, cycle) {
            let ready = self.warps[warp_id.index()].scoreboard_ready_at(&reads, dst);
            self.warps[warp_id.index()].status = WarpStatus::StalledUntil(ready.max(cycle + 1));
            return false;
        }

        // Operand collector allocation.
        let Some(collector) = self
            .collectors
            .iter()
            .position(|&busy_until| busy_until <= cycle)
        else {
            return false;
        };

        // For global memory operations, respect the MSHR limit.
        let is_global_mem = matches!(
            opcode,
            Opcode::LoadGlobal | Opcode::LoadLocal | Opcode::StoreGlobal | Opcode::StoreLocal
        );
        if is_global_mem && !self.memory.can_accept(cycle) {
            return false;
        }

        // Gather operands through the register-file organization.
        let operands_ready = self.regfile.read_operands(warp_id, &reads, cycle);
        self.collectors[collector] = operands_ready;
        if !dying.is_empty() {
            self.regfile.operands_dead(warp_id, &dying);
        }

        // Execute.
        let complete = self.execute(warp_id, opcode, operands_ready);

        // Write back the destination through the register file and update the
        // scoreboard.
        if let Some(d) = dst {
            let visible = self.regfile.write_register(warp_id, d, complete);
            self.warps[warp_id.index()].record_pending_write(d, visible.max(complete));
        }

        // Book-keeping and control flow.
        {
            let warp = &mut self.warps[warp_id.index()];
            warp.pc += 1;
            warp.instructions_executed += 1;
        }
        self.stats.instructions += 1;

        // The two-level scheduler demotes a warp that actually stalls for a
        // long time: barriers, and loads that miss in the L1 and travel to
        // the LLC or DRAM. Loads that hit in the L1 (and stores, which do not
        // produce a value the warp waits on) keep the warp active; dependent
        // instructions are held back by the scoreboard instead.
        let demotion_threshold = 2 * self.config.memory.l1_hit_latency;
        let is_long_load = matches!(opcode, Opcode::LoadGlobal | Opcode::LoadLocal)
            && complete.saturating_sub(operands_ready) > demotion_threshold;
        if opcode == Opcode::Barrier || is_long_load {
            self.demote_warp(warp_id, complete, cycle);
        }
        true
    }

    /// Computes the completion cycle of `opcode` whose operands are ready at
    /// `operands_ready`.
    fn execute(&mut self, warp_id: WarpId, opcode: Opcode, operands_ready: Cycle) -> Cycle {
        let exec = &self.config.exec;
        match opcode.class() {
            OpcodeClass::SimpleAlu => operands_ready + exec.simple_alu,
            OpcodeClass::MulAlu => operands_ready + exec.mul_alu,
            OpcodeClass::FpAlu => operands_ready + exec.fp_alu,
            OpcodeClass::Sfu => operands_ready + exec.sfu,
            OpcodeClass::Barrier => operands_ready + exec.barrier,
            OpcodeClass::Nop => operands_ready + 1,
            OpcodeClass::Load | OpcodeClass::Store => match opcode {
                Opcode::LoadShared | Opcode::StoreShared => operands_ready + exec.shared_mem,
                Opcode::LoadConst => operands_ready + exec.const_mem,
                _ => {
                    let address = self.addresses.next_address(warp_id);
                    self.memory.access_global(address, operands_ready)
                }
            },
        }
    }

    fn retire_warp(&mut self, warp_id: WarpId, cycle: Cycle) {
        self.warps[warp_id.index()].status = WarpStatus::Finished;
        self.active.retain(|&w| w != warp_id);
        self.regfile.warp_deactivated(warp_id, cycle);
        self.finished += 1;
    }

    fn demote_warp(&mut self, warp_id: WarpId, resume_at: Cycle, cycle: Cycle) {
        self.warps[warp_id.index()].status = WarpStatus::InactiveUntil(resume_at);
        self.active.retain(|&w| w != warp_id);
        self.regfile.warp_deactivated(warp_id, cycle);
    }

    /// Chooses the next warp to activate: never-started warps first, then the
    /// inactive warp whose pending operation completed the longest ago.
    fn pick_activation_candidate(&mut self, cycle: Cycle) -> Option<WarpId> {
        let mut best: Option<(WarpId, Cycle)> = None;
        for (idx, warp) in self.warps.iter().enumerate() {
            let id = WarpId(idx as u32);
            if self.active.contains(&id) {
                continue;
            }
            match warp.status {
                WarpStatus::Pending => return Some(id),
                WarpStatus::InactiveUntil(t) if t <= cycle && best.is_none_or(|(_, bt)| t < bt) => {
                    best = Some((id, t));
                }
                _ => {}
            }
        }
        best.map(|(id, _)| id)
    }
}

impl<'a> SmEngine<'a> for Engine<'a> {
    fn with_parts(
        kernel: &'a Kernel,
        config: &'a SmConfig,
        regfile: &'a mut dyn RegisterFileModel,
        memory: MemoryHierarchy,
        addresses: AddressGenerator,
        warp_seeds: &[u64],
    ) -> Self {
        let warps: Vec<WarpContext> = warp_seeds
            .iter()
            .map(|&seed| WarpContext::new(kernel, seed))
            .collect();
        let stats = SimStats {
            warps_resident: warps.len(),
            ..SimStats::default()
        };
        Engine {
            kernel,
            config,
            regfile,
            memory,
            addresses,
            warps,
            active: Vec::new(),
            collectors: vec![0; config.operand_collectors.max(1)],
            stats,
            finished: 0,
        }
    }

    fn is_done(&self) -> bool {
        self.finished >= self.warps.len()
    }

    fn note_idle(&mut self) {
        self.stats.idle_cycles += 1;
    }

    fn issue_cycle(&mut self, cycle: Cycle) -> usize {
        let mut issued = 0;
        // Rotate the starting warp each cycle for round-robin fairness.
        let active_snapshot: Vec<WarpId> = self.active.clone();
        if active_snapshot.is_empty() {
            return 0;
        }
        let start = (cycle as usize) % active_snapshot.len();
        for offset in 0..active_snapshot.len() {
            if issued >= self.config.issue_width {
                break;
            }
            let warp_id = active_snapshot[(start + offset) % active_snapshot.len()];
            if self.try_issue(warp_id, cycle) {
                issued += 1;
            }
        }
        issued
    }

    fn refill_active_pool(&mut self, cycle: Cycle) {
        while self.active.len() < self.config.active_warps {
            let candidate = self.pick_activation_candidate(cycle);
            let Some(warp_id) = candidate else { break };
            let block = self.warps[warp_id.index()].block;
            let ready = self.regfile.warp_activated(warp_id, block, cycle);
            self.warps[warp_id.index()].status = if ready > cycle {
                WarpStatus::StalledUntil(ready)
            } else {
                WarpStatus::Ready
            };
            self.active.push(warp_id);
            self.stats.warp_activations += 1;
        }
    }

    fn next_event_after(&mut self, cycle: Cycle) -> Cycle {
        let mut next = Cycle::MAX;
        for (idx, warp) in self.warps.iter().enumerate() {
            let id = WarpId(idx as u32);
            match warp.status {
                WarpStatus::StalledUntil(t) if self.active.contains(&id) && t > cycle => {
                    next = next.min(t);
                }
                WarpStatus::InactiveUntil(t) if t > cycle => next = next.min(t),
                WarpStatus::Ready if self.active.contains(&id) => {
                    // A ready active warp could not issue this cycle only due
                    // to collectors or MSHRs; re-check next cycle.
                    next = next.min(cycle + 1);
                }
                WarpStatus::Pending => next = next.min(cycle + 1),
                _ => {}
            }
        }
        for &busy in &self.collectors {
            if busy > cycle {
                next = next.min(busy);
            }
        }
        if next == Cycle::MAX {
            cycle + 1
        } else {
            next
        }
    }

    fn finalize(mut self, cycle: Cycle) -> SimStats {
        self.stats.cycles = cycle.max(1);
        self.stats.warps_completed = self.finished;
        self.stats.truncated = self.finished < self.warps.len();
        self.stats.regfile_accesses = self.regfile.access_counts();
        self.stats.regfile_accesses.cycles = self.stats.cycles;
        self.stats.register_cache_hit_rate = self.regfile.register_cache_hit_rate();
        self.stats.prefetch_stall_cycles = self.regfile.prefetch_stall_cycles();
        self.stats.memory = self.memory.stats();
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regfile::{DirectRegisterFile, IdealRegisterFile};
    use ltrf_isa::{straight_line_kernel, ArchReg, KernelBuilder, LaunchConfig, Opcode};

    fn small_config() -> SmConfig {
        SmConfig {
            max_warps: 8,
            active_warps: 4,
            max_cycles: 2_000_000,
            ..SmConfig::default()
        }
    }

    fn alu_kernel(warps: u32) -> Kernel {
        let mut b = KernelBuilder::new("alu", 16);
        let e = b.entry_block();
        for i in 0..60usize {
            b.push(
                e,
                Opcode::FAlu,
                Some(ArchReg::new((i % 8) as u8)),
                &[ArchReg::new(((i + 1) % 8) as u8)],
            );
        }
        b.exit(e);
        b.launch(LaunchConfig::new(warps, 1, 0));
        b.build().unwrap()
    }

    fn memory_kernel(warps: u32) -> Kernel {
        let mut b = KernelBuilder::new("mem", 16);
        let entry = b.entry_block();
        let body = b.add_block();
        let exit = b.add_block();
        b.push(entry, Opcode::Mov, Some(ArchReg::new(0)), &[]);
        b.jump(entry, body);
        b.push(
            body,
            Opcode::LoadGlobal,
            Some(ArchReg::new(1)),
            &[ArchReg::new(0)],
        );
        b.push(
            body,
            Opcode::FAlu,
            Some(ArchReg::new(2)),
            &[ArchReg::new(1)],
        );
        b.push(
            body,
            Opcode::FAlu,
            Some(ArchReg::new(3)),
            &[ArchReg::new(2)],
        );
        b.loop_branch(body, body, exit, 10);
        b.push(
            exit,
            Opcode::StoreGlobal,
            None,
            &[ArchReg::new(0), ArchReg::new(3)],
        );
        b.exit(exit);
        b.launch(LaunchConfig::new(warps, 1, 0));
        b.build().unwrap()
    }

    #[test]
    fn all_warps_complete_and_instruction_count_matches() {
        let kernel = alu_kernel(8);
        let workload = SimWorkload::new(kernel);
        let config = small_config();
        let mut rf = DirectRegisterFile::new(config.regfile);
        let stats = simulate(&workload, &config, &mut rf);
        assert!(!stats.truncated);
        assert_eq!(stats.warps_resident, 8);
        assert_eq!(stats.warps_completed, 8);
        assert_eq!(stats.instructions, 8 * 60);
        assert!(stats.ipc() > 0.0);
    }

    #[test]
    fn memory_kernel_completes_with_loop_trips() {
        let kernel = memory_kernel(4);
        let per_warp = 1 + 10 * 3 + 1;
        let workload = SimWorkload::new(kernel);
        let config = small_config();
        let mut rf = DirectRegisterFile::new(config.regfile);
        let stats = simulate(&workload, &config, &mut rf);
        assert!(!stats.truncated);
        assert_eq!(stats.instructions, 4 * per_warp);
        assert!(stats.memory.global_requests >= 4 * 10);
        assert!(
            stats.warp_activations >= 4,
            "loads demote and reactivate warps"
        );
    }

    #[test]
    fn slower_register_file_reduces_ipc() {
        let kernel = alu_kernel(8);
        let config = small_config();
        let workload = SimWorkload::new(kernel);
        let mut fast = DirectRegisterFile::new(config.regfile);
        let fast_stats = simulate(&workload, &config, &mut fast);
        let slow_config = small_config().with_mrf_latency_factor(6.3);
        let mut slow = DirectRegisterFile::new(slow_config.regfile);
        let slow_stats = simulate(&workload, &slow_config, &mut slow);
        assert!(
            slow_stats.ipc() < fast_stats.ipc(),
            "6.3x register file latency must hurt a dependent ALU kernel: {} vs {}",
            slow_stats.ipc(),
            fast_stats.ipc()
        );
    }

    #[test]
    fn ideal_register_file_is_at_least_as_fast_as_direct() {
        let kernel = memory_kernel(8);
        let config = small_config();
        let workload = SimWorkload::new(kernel);
        let mut direct = DirectRegisterFile::new(config.regfile.with_latency_factor(6.3));
        let direct_stats = simulate(&workload, &config, &mut direct);
        let mut ideal = IdealRegisterFile::new(config.regfile);
        let ideal_stats = simulate(&workload, &config, &mut ideal);
        assert!(ideal_stats.ipc() >= direct_stats.ipc());
    }

    #[test]
    fn more_active_warps_hide_memory_latency() {
        // A latency-bound kernel (cache-resident working set, so bandwidth is
        // not the limit): a larger active pool hides more of the load
        // latency, as in the paper's Figure 13.
        let kernel = memory_kernel(16);
        let config = SmConfig {
            max_warps: 16,
            active_warps: 1,
            ..SmConfig::default()
        };
        let workload =
            SimWorkload::new(kernel.clone()).with_memory(MemoryBehavior::cache_resident());
        let mut rf = DirectRegisterFile::new(config.regfile);
        let few = simulate(&workload, &config, &mut rf);
        let config8 = SmConfig {
            active_warps: 8,
            ..config
        };
        let mut rf8 = DirectRegisterFile::new(config8.regfile);
        let many = simulate(&workload, &config8, &mut rf8);
        assert!(
            many.ipc() > few.ipc(),
            "8 active warps should beat 1 on a latency-bound kernel: {} vs {}",
            many.ipc(),
            few.ipc()
        );
    }

    #[test]
    fn resident_warps_respect_register_capacity() {
        // 128 registers per thread -> 16 KB per warp -> 16 warps in 256 KB.
        let kernel = straight_line_kernel("big", 128, 30);
        let workload = SimWorkload::new(kernel);
        let config = SmConfig::default();
        let mut rf = DirectRegisterFile::new(config.regfile);
        let stats = simulate(&workload, &config, &mut rf);
        assert_eq!(stats.warps_resident, 16);
        // An 8x register file lifts the cap (launch provides 8*64 warps).
        let big = SmConfig::default().with_regfile_capacity_factor(8.0);
        let mut rf2 = DirectRegisterFile::new(big.regfile);
        let stats2 = simulate(&workload, &big, &mut rf2);
        assert_eq!(stats2.warps_resident, 64);
    }

    /// The fast engine must be bit-identical to the reference tick loop on
    /// every statistic, across register-file models and scheduler shapes.
    /// (The cross-organization, multi-SM matrix lives in `ltrf-core`'s
    /// differential suite; this is the fast in-crate check.)
    #[test]
    fn fast_engine_matches_reference_bit_for_bit_on_unit_kernels() {
        let kernels = [alu_kernel(8), memory_kernel(8)];
        let configs = [
            small_config(),
            SmConfig {
                active_warps: 1,
                ..small_config()
            },
            SmConfig {
                operand_collectors: 1,
                issue_width: 4,
                ..small_config()
            },
        ];
        for kernel in &kernels {
            for config in &configs {
                for seed in [0xC0FFEE_u64, 7] {
                    let workload = SimWorkload::new(kernel.clone()).with_seed(seed);
                    let mut rf_fast = DirectRegisterFile::new(config.regfile);
                    let mut rf_ref = DirectRegisterFile::new(config.regfile);
                    let fast = simulate_with(&workload, config, &mut rf_fast, EngineKind::Fast);
                    let reference =
                        simulate_with(&workload, config, &mut rf_ref, EngineKind::Reference);
                    assert_eq!(fast, reference, "engines diverged on {}", kernel.name());

                    let mut ideal_fast = IdealRegisterFile::new(config.regfile);
                    let mut ideal_ref = IdealRegisterFile::new(config.regfile);
                    let fast = simulate_with(&workload, config, &mut ideal_fast, EngineKind::Fast);
                    let reference =
                        simulate_with(&workload, config, &mut ideal_ref, EngineKind::Reference);
                    assert_eq!(fast, reference, "ideal-RF divergence on {}", kernel.name());
                }
            }
        }
    }

    /// A kernel of independent writes (no reads, so no scoreboard stalls):
    /// every active warp can issue every cycle.
    fn independent_kernel(warps: u32) -> Kernel {
        let mut b = KernelBuilder::new("indep", 16);
        let e = b.entry_block();
        for i in 0..10usize {
            b.push(e, Opcode::Mov, Some(ArchReg::new((i % 8) as u8)), &[]);
        }
        b.exit(e);
        b.launch(LaunchConfig::new(warps, 1, 0));
        b.build().unwrap()
    }

    /// Pins the issue-order assumption the fast engine ports: the round-robin
    /// walk starts at `cycle % active_pool_len`, so with `issue_width = 1`
    /// two ready warps alternate rather than warp 0 monopolizing the slot.
    #[test]
    fn issue_order_rotates_with_cycle() {
        let kernel = independent_kernel(2);
        let workload = SimWorkload::new(kernel);
        let config = SmConfig {
            max_warps: 2,
            active_warps: 2,
            issue_width: 1,
            ..SmConfig::default()
        };
        let mut rf = DirectRegisterFile::new(config.regfile);
        let mut engine = Engine::new(&workload, &config, &mut rf);
        engine.refill_active_pool(0);
        assert_eq!(engine.issue_cycle(0), 1);
        assert_eq!(engine.issue_cycle(1), 1);
        assert_eq!(
            (
                engine.warps[0].instructions_executed,
                engine.warps[1].instructions_executed,
            ),
            (1, 1),
            "cycle 0 starts at warp 0, cycle 1 starts at warp 1"
        );
    }

    /// Pins the stale-snapshot assumption: `issue_cycle` iterates the active
    /// pool as it was at the start of the cycle, so a warp demoted mid-cycle
    /// (here by a barrier) does not stop later warps from issuing.
    #[test]
    fn mid_cycle_demotion_does_not_skip_later_warps() {
        let mut b = KernelBuilder::new("barrier", 16);
        let e = b.entry_block();
        b.push(e, Opcode::Barrier, None, &[]);
        b.push(e, Opcode::Mov, Some(ArchReg::new(0)), &[]);
        b.exit(e);
        b.launch(LaunchConfig::new(2, 1, 0));
        let kernel = b.build().unwrap();
        let workload = SimWorkload::new(kernel);
        let config = SmConfig {
            max_warps: 2,
            active_warps: 2,
            issue_width: 2,
            ..SmConfig::default()
        };
        let mut rf = DirectRegisterFile::new(config.regfile);
        let mut engine = Engine::new(&workload, &config, &mut rf);
        engine.refill_active_pool(0);
        // Warp 0's barrier demotes it from the pool mid-cycle; warp 1 must
        // still get its issue slot from the cycle-start snapshot.
        assert_eq!(engine.issue_cycle(0), 2);
        assert!(engine.active.is_empty(), "both warps demoted by barriers");
    }

    /// Pins the activation order: a `Pending` (never-started) warp always
    /// wins, then the eligible inactive warp with the earliest completion,
    /// then the lowest index on ties — the exact order the fast engine's
    /// wakeup queue reproduces.
    #[test]
    fn activation_prefers_pending_then_earliest_completion_then_index() {
        let kernel = independent_kernel(4);
        let workload = SimWorkload::new(kernel);
        let config = SmConfig {
            max_warps: 4,
            active_warps: 1,
            ..SmConfig::default()
        };
        let mut rf = DirectRegisterFile::new(config.regfile);
        let mut engine = Engine::new(&workload, &config, &mut rf);
        engine.warps[0].status = WarpStatus::InactiveUntil(3);
        engine.warps[1].status = WarpStatus::Finished;
        engine.warps[2].status = WarpStatus::InactiveUntil(2);
        // Warp 3 is still Pending: it must win over every inactive warp.
        assert_eq!(engine.pick_activation_candidate(10), Some(WarpId(3)));
        engine.warps[3].status = WarpStatus::InactiveUntil(2);
        // No Pending left: earliest completion wins, lowest index on ties.
        assert_eq!(engine.pick_activation_candidate(10), Some(WarpId(2)));
        engine.warps[2].status = WarpStatus::Finished;
        assert_eq!(engine.pick_activation_candidate(10), Some(WarpId(3)));
        // Not yet eligible at cycle 1.
        assert_eq!(engine.pick_activation_candidate(1), None);
    }

    /// Pins the skip-ahead hazard the fast engine's two-heap queue exists
    /// for: an inactive warp whose wakeup has already passed (eligible but
    /// unadmitted, pool full) contributes nothing to `next_event_after`.
    #[test]
    fn next_event_ignores_due_inactive_warps() {
        let kernel = independent_kernel(2);
        let workload = SimWorkload::new(kernel);
        let config = SmConfig {
            max_warps: 2,
            active_warps: 1,
            ..SmConfig::default()
        };
        let mut rf = DirectRegisterFile::new(config.regfile);
        let mut engine = Engine::new(&workload, &config, &mut rf);
        engine.warps[0].status = WarpStatus::StalledUntil(100);
        engine.warps[1].status = WarpStatus::InactiveUntil(5);
        engine.active.push(WarpId(0));
        // Warp 1 became eligible at cycle 5 but the pool is full: the next
        // *time* event is warp 0's stall resolving, not cycle 10 + 1.
        assert_eq!(engine.next_event_after(10), 100);
        // A strictly-future wakeup does bound the jump.
        engine.warps[1].status = WarpStatus::InactiveUntil(40);
        assert_eq!(engine.next_event_after(10), 40);
    }

    #[test]
    fn stats_capture_regfile_accesses() {
        let kernel = alu_kernel(2);
        let workload = SimWorkload::new(kernel);
        let config = small_config();
        let mut rf = DirectRegisterFile::new(config.regfile);
        let stats = simulate(&workload, &config, &mut rf);
        assert!(stats.regfile_accesses.mrf_reads > 0);
        assert!(stats.regfile_accesses.mrf_writes > 0);
        assert_eq!(stats.regfile_accesses.cycles, stats.cycles);
        assert_eq!(stats.register_cache_hit_rate, None);
    }
}
