//! Small shared types: cycles, warp identifiers, and the register-bank
//! arbiter helper reused by every register-file organization.

use std::fmt;

use serde::{Deserialize, Serialize};

/// A simulation time stamp, in core clock cycles.
pub type Cycle = u64;

/// Identifier of a warp resident on the simulated SM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct WarpId(pub u32);

impl WarpId {
    /// Returns the warp index as a `usize`.
    #[must_use]
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for WarpId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "w{}", self.0)
    }
}

/// Tracks per-bank busy times and serialises conflicting accesses.
///
/// Register-file banks have a single read/write port in the modelled designs;
/// two accesses mapped to the same bank in the same cycle therefore serialise.
/// Every register-file organization (baseline, RFC, LTRF, ...) shares this
/// bank-conflict behaviour, so the arbiter lives here rather than in
/// `ltrf-core`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct BankArbiter {
    next_free: Vec<Cycle>,
    access_latency: Cycle,
}

impl BankArbiter {
    /// Creates an arbiter over `banks` banks whose accesses take
    /// `access_latency` cycles.
    ///
    /// # Panics
    ///
    /// Panics if `banks` is zero.
    #[must_use]
    pub fn new(banks: usize, access_latency: Cycle) -> Self {
        assert!(banks > 0, "a register file needs at least one bank");
        BankArbiter {
            next_free: vec![0; banks],
            access_latency,
        }
    }

    /// Number of banks.
    #[must_use]
    pub fn bank_count(&self) -> usize {
        self.next_free.len()
    }

    /// Access latency of one bank access, in cycles.
    #[must_use]
    pub const fn access_latency(&self) -> Cycle {
        self.access_latency
    }

    /// Changes the per-access latency (used by latency-sweep experiments).
    pub fn set_access_latency(&mut self, latency: Cycle) {
        self.access_latency = latency;
    }

    /// Schedules a single access to `bank` that is requested at `now`.
    /// Returns the cycle at which the data is available.
    ///
    /// # Panics
    ///
    /// Panics if `bank` is out of range.
    pub fn access(&mut self, bank: usize, now: Cycle) -> Cycle {
        let start = self.next_free[bank].max(now);
        let done = start + self.access_latency;
        // The bank can accept a new request once the current access's
        // bank-busy time elapses (modelled as the full access latency).
        self.next_free[bank] = done;
        done
    }

    /// Schedules one access per bank in `banks`, all requested at `now`, and
    /// returns the cycle at which the *last* of them completes. This is the
    /// operand-collector pattern: an instruction is ready only when all of
    /// its source operands have been gathered.
    pub fn access_all(&mut self, banks: impl IntoIterator<Item = usize>, now: Cycle) -> Cycle {
        let mut ready = now;
        for bank in banks {
            ready = ready.max(self.access(bank, now));
        }
        ready
    }

    /// Resets all banks to idle.
    pub fn reset(&mut self) {
        self.next_free.iter_mut().for_each(|c| *c = 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warp_id_display() {
        assert_eq!(WarpId(5).to_string(), "w5");
        assert_eq!(WarpId(5).index(), 5);
    }

    #[test]
    fn conflict_free_accesses_complete_in_one_latency() {
        let mut arb = BankArbiter::new(4, 3);
        let ready = arb.access_all([0, 1, 2], 10);
        assert_eq!(ready, 13);
    }

    #[test]
    fn conflicting_accesses_serialize() {
        let mut arb = BankArbiter::new(2, 3);
        let first = arb.access(0, 0);
        let second = arb.access(0, 0);
        assert_eq!(first, 3);
        assert_eq!(second, 6, "same-bank access must wait for the first");
        // A different bank is unaffected.
        assert_eq!(arb.access(1, 0), 3);
    }

    #[test]
    fn access_all_reports_worst_case() {
        let mut arb = BankArbiter::new(2, 2);
        // Three accesses over two banks: bank 0 twice, bank 1 once.
        let ready = arb.access_all([0, 0, 1], 0);
        assert_eq!(ready, 4);
    }

    #[test]
    fn reset_and_latency_update() {
        let mut arb = BankArbiter::new(1, 5);
        let _ = arb.access(0, 0);
        arb.reset();
        arb.set_access_latency(1);
        assert_eq!(arb.access(0, 0), 1);
        assert_eq!(arb.access_latency(), 1);
        assert_eq!(arb.bank_count(), 1);
    }

    #[test]
    #[should_panic(expected = "at least one bank")]
    fn zero_banks_panics() {
        let _ = BankArbiter::new(0, 1);
    }
}
