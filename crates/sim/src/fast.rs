//! The allocation-free, skip-ahead SM engine (the default fast path).
//!
//! `FastEngine` executes exactly the schedule of the reference engine in
//! [`crate::engine`] — the differential test layer pins every statistic to
//! bit-identical equality — but restructures the hot path around
//! data-oriented layouts and event-driven wakeups:
//!
//! * **Pre-decoded instruction stream.** The kernel's blocks are flattened
//!   once at construction into a [`DecodedKernel`]: per static instruction
//!   the opcode, destination, read set, and dying set (the reference engine
//!   rebuilds the two `RegSet`s from the operand list on every dynamic
//!   instruction), plus per-block offsets and terminators.
//! * **SoA warp state.** Status, current block, pc, and branch RNG live in
//!   flat per-warp vectors instead of a `Vec<WarpContext>` of structs with
//!   two `HashMap`s each.
//! * **Flat scoreboard with a batch guard.** Pending-write ready cycles are
//!   a `warps x regs` matrix; an entry at or before `now` means "no pending
//!   write" (the reference engine's `retain` drops exactly those entries
//!   before every check, so stale values are unobservable). A per-warp
//!   `max_pending` watermark batches the common case: if the latest pending
//!   write of the warp is already visible, the per-register walk is skipped
//!   entirely.
//! * **Event-driven activation.** Demoted warps enter a [`WakeupQueue`]
//!   keyed on `(resume_cycle, warp_id)`; the scheduler pops the minimum
//!   instead of scanning all warps, and never-started warps are a cursor
//!   into the warp array (warps start `Pending` in index order and never
//!   return to it). Both reproduce the reference activation order exactly.
//! * **Reused scratch buffers.** The per-cycle active-pool snapshot is a
//!   pre-sized buffer refilled in place; no per-cycle `Vec` allocation.
//!
//! What skip-ahead may skip, and what it may not, is decided by
//! `next_event_after`: see the DESIGN.md section on the event-driven core.

use ltrf_isa::trace::BranchRng;
use ltrf_isa::{ArchReg, BlockId, BranchBehavior, Kernel, Opcode, OpcodeClass, RegSet, Terminator};

use crate::config::SmConfig;
use crate::driver::SmEngine;
use crate::engine::SimWorkload;
use crate::memory::{AddressGenerator, MemoryHierarchy};
use crate::regfile::RegisterFileModel;
use crate::stats::SimStats;
use crate::types::{Cycle, WarpId};
use crate::wakeup::WakeupQueue;
use crate::warp::WarpStatus;

/// One pre-decoded static instruction: everything `try_issue` needs, with
/// the operand `RegSet`s materialized once instead of per dynamic execution.
#[derive(Debug, Clone, Copy)]
struct DecodedInst {
    opcode: Opcode,
    dst: Option<ArchReg>,
    reads: RegSet,
    dying: RegSet,
    is_global_mem: bool,
}

/// A kernel flattened for the fast engine: instructions in one contiguous
/// array with per-block offsets, terminators in a dense table, and the
/// register-index bound that sizes the flat scoreboard.
#[derive(Debug)]
struct DecodedKernel {
    entry: u32,
    nblocks: usize,
    /// One past the highest register index any instruction touches (at
    /// least 1), the stride of the per-warp scoreboard rows.
    nregs: usize,
    block_start: Vec<u32>,
    block_len: Vec<u32>,
    terminators: Vec<Option<Terminator>>,
    insts: Vec<DecodedInst>,
}

impl DecodedKernel {
    fn new(kernel: &Kernel) -> Self {
        let nblocks = kernel.cfg.block_count();
        let mut block_start = vec![0u32; nblocks];
        let mut block_len = vec![0u32; nblocks];
        let mut terminators: Vec<Option<Terminator>> = vec![None; nblocks];
        let mut insts = Vec::with_capacity(kernel.cfg.static_instruction_count());
        let mut max_reg = 0usize;
        for block in kernel.cfg.blocks() {
            let b = block.id().index();
            block_start[b] = insts.len() as u32;
            block_len[b] = block.len() as u32;
            terminators[b] = block.terminator().copied();
            for inst in block.instructions() {
                let reads = inst.reads();
                let dst = inst.dst();
                for r in reads.iter() {
                    max_reg = max_reg.max(r.index());
                }
                if let Some(d) = dst {
                    max_reg = max_reg.max(d.index());
                }
                let opcode = inst.opcode();
                insts.push(DecodedInst {
                    opcode,
                    dst,
                    reads,
                    dying: inst.dying_registers(),
                    is_global_mem: matches!(
                        opcode,
                        Opcode::LoadGlobal
                            | Opcode::LoadLocal
                            | Opcode::StoreGlobal
                            | Opcode::StoreLocal
                    ),
                });
            }
        }
        DecodedKernel {
            entry: kernel.cfg.entry().0,
            nblocks,
            nregs: max_reg + 1,
            block_start,
            block_len,
            terminators,
            insts,
        }
    }
}

/// The allocation-free, skip-ahead SM pipeline.
///
/// Crate-private like the reference [`crate::engine::Engine`]; it is driven
/// through [`crate::driver`] by [`crate::simulate_with`] and
/// [`crate::gpu::simulate_gpu_with`].
pub(crate) struct FastEngine<'a> {
    config: &'a SmConfig,
    regfile: &'a mut dyn RegisterFileModel,
    memory: MemoryHierarchy,
    addresses: AddressGenerator,
    code: DecodedKernel,
    // --- SoA per-warp state (indexed by warp id) ---
    status: Vec<WarpStatus>,
    block: Vec<u32>,
    pc: Vec<u32>,
    rngs: Vec<BranchRng>,
    /// Flat scoreboard, `warps x nregs`: the cycle at which the latest
    /// pending write of the register becomes visible. A value at or before
    /// the current cycle means "no pending write".
    reg_ready: Vec<Cycle>,
    /// Per-warp watermark over `reg_ready`: if at or before the current
    /// cycle, the whole warp has no visible hazard and the per-register
    /// scoreboard walk is skipped (the batched scoreboard check).
    max_pending: Vec<Cycle>,
    /// Flat per-warp, per-block remaining loop iterations; `u32::MAX` is the
    /// "not entered" sentinel (stored counts are at most `u32::MAX - 1`).
    loop_left: Vec<u32>,
    // --- scheduler state ---
    active: Vec<WarpId>,
    /// Reused per-cycle snapshot of the active pool (the reference engine
    /// clones the pool each cycle to keep mid-cycle demotions from
    /// perturbing the round-robin walk; this buffer reproduces that
    /// semantics without allocating).
    snapshot: Vec<WarpId>,
    /// Warps with indices at or beyond this cursor have never been
    /// activated (status `Pending`); activation consumes them in index
    /// order, exactly like the reference engine's linear scan.
    pending_cursor: usize,
    /// Demoted warps waiting on their pending operation.
    wakeups: WakeupQueue,
    collectors: Vec<Cycle>,
    stats: SimStats,
    finished: usize,
}

impl<'a> FastEngine<'a> {
    pub(crate) fn new(
        workload: &'a SimWorkload,
        config: &'a SmConfig,
        regfile: &'a mut dyn RegisterFileModel,
    ) -> Self {
        let kernel = &workload.kernel;
        let launch_warps = kernel.launch().total_warps().min(usize::MAX as u64) as usize;
        let resident = config
            .resident_warps(kernel.regs_per_thread())
            .min(launch_warps.max(1));
        let seeds: Vec<u64> = (0..resident as u64)
            .map(|i| workload.seed ^ (0x9E37 + i * 0x85EB_CA6B))
            .collect();
        <FastEngine as SmEngine>::with_parts(
            kernel,
            config,
            regfile,
            MemoryHierarchy::new(&config.memory),
            AddressGenerator::new(workload.memory, resident, workload.seed),
            &seeds,
        )
    }

    /// Attempts to issue one instruction from `warp_id`. Returns `true` on
    /// success. Mirrors the reference engine's `try_issue` step for step.
    fn try_issue(&mut self, warp_id: WarpId, cycle: Cycle) -> bool {
        let w = warp_id.index();
        // Resolve stalls.
        match self.status[w] {
            WarpStatus::StalledUntil(t) if t <= cycle => {
                self.status[w] = WarpStatus::Ready;
            }
            WarpStatus::Ready => {}
            _ => return false,
        }

        // Advance through terminators / empty blocks until an instruction is
        // available or the warp finishes or stalls on a PREFETCH.
        let mut guard = 0usize;
        loop {
            let b = self.block[w] as usize;
            if self.pc[w] < self.code.block_len[b] {
                break;
            }
            guard += 1;
            if guard > self.code.nblocks + 1 {
                // Pathological empty-block cycle; treat the warp as finished
                // so the simulation terminates.
                self.retire_warp(warp_id, cycle);
                return false;
            }
            match self.take_branch(w) {
                None => {
                    self.retire_warp(warp_id, cycle);
                    return false;
                }
                Some(next_block) => {
                    let ready = self.regfile.block_entered(warp_id, next_block, cycle);
                    self.block[w] = next_block.0;
                    self.pc[w] = 0;
                    if ready > cycle {
                        self.status[w] = WarpStatus::StalledUntil(ready);
                        return false;
                    }
                }
            }
        }

        // Fetch the pre-decoded instruction.
        let b = self.block[w] as usize;
        let inst = self.code.insts[(self.code.block_start[b] + self.pc[w]) as usize];

        // Scoreboard check, batched: if the warp's latest pending write is
        // already visible there can be no hazard; otherwise walk the
        // instruction's registers in the flat matrix.
        let base = w * self.code.nregs;
        if self.max_pending[w] > cycle {
            let mut hazard_until: Cycle = 0;
            for r in inst.reads.iter() {
                hazard_until = hazard_until.max(self.reg_ready[base + r.index()]);
            }
            if let Some(d) = inst.dst {
                hazard_until = hazard_until.max(self.reg_ready[base + d.index()]);
            }
            if hazard_until > cycle {
                self.status[w] = WarpStatus::StalledUntil(hazard_until.max(cycle + 1));
                return false;
            }
        }

        // Operand collector allocation.
        let Some(collector) = self
            .collectors
            .iter()
            .position(|&busy_until| busy_until <= cycle)
        else {
            return false;
        };

        // For global memory operations, respect the MSHR limit.
        if inst.is_global_mem && !self.memory.can_accept(cycle) {
            return false;
        }

        // Gather operands through the register-file organization.
        let operands_ready = self.regfile.read_operands(warp_id, &inst.reads, cycle);
        self.collectors[collector] = operands_ready;
        if !inst.dying.is_empty() {
            self.regfile.operands_dead(warp_id, &inst.dying);
        }

        // Execute.
        let complete = self.execute(warp_id, inst.opcode, operands_ready);

        // Write back the destination through the register file and update the
        // scoreboard.
        if let Some(d) = inst.dst {
            let visible = self.regfile.write_register(warp_id, d, complete);
            let ready = visible.max(complete);
            let slot = &mut self.reg_ready[base + d.index()];
            *slot = (*slot).max(ready);
            self.max_pending[w] = self.max_pending[w].max(ready);
        }

        // Book-keeping and control flow.
        self.pc[w] += 1;
        self.stats.instructions += 1;

        // The two-level scheduler demotes a warp that actually stalls for a
        // long time: barriers, and loads that miss in the L1 and travel to
        // the LLC or DRAM (same rule as the reference engine).
        let demotion_threshold = 2 * self.config.memory.l1_hit_latency;
        let is_long_load = matches!(inst.opcode, Opcode::LoadGlobal | Opcode::LoadLocal)
            && complete.saturating_sub(operands_ready) > demotion_threshold;
        if inst.opcode == Opcode::Barrier || is_long_load {
            self.demote_warp(warp_id, complete, cycle);
        }
        true
    }

    /// Advances control flow past the current block's terminator. Returns
    /// the next block, or `None` if the warp exits the kernel.
    fn take_branch(&mut self, w: usize) -> Option<BlockId> {
        let b = self.block[w] as usize;
        match self.code.terminators[b].expect("validated kernel") {
            Terminator::Exit => None,
            Terminator::Jump(t) => Some(t),
            Terminator::Branch {
                taken,
                not_taken,
                behavior,
            } => {
                let take = match behavior {
                    BranchBehavior::AlwaysTaken => true,
                    BranchBehavior::NeverTaken => false,
                    BranchBehavior::Probabilistic { taken_probability } => {
                        self.rngs[w].chance(taken_probability)
                    }
                    BranchBehavior::Loop { trip_count } => {
                        let slot = &mut self.loop_left[w * self.code.nblocks + b];
                        if *slot == u32::MAX {
                            *slot = trip_count.saturating_sub(1);
                        }
                        if *slot > 0 {
                            *slot -= 1;
                            true
                        } else {
                            *slot = u32::MAX;
                            false
                        }
                    }
                };
                Some(if take { taken } else { not_taken })
            }
        }
    }

    /// Computes the completion cycle of `opcode` whose operands are ready at
    /// `operands_ready`.
    fn execute(&mut self, warp_id: WarpId, opcode: Opcode, operands_ready: Cycle) -> Cycle {
        let exec = &self.config.exec;
        match opcode.class() {
            OpcodeClass::SimpleAlu => operands_ready + exec.simple_alu,
            OpcodeClass::MulAlu => operands_ready + exec.mul_alu,
            OpcodeClass::FpAlu => operands_ready + exec.fp_alu,
            OpcodeClass::Sfu => operands_ready + exec.sfu,
            OpcodeClass::Barrier => operands_ready + exec.barrier,
            OpcodeClass::Nop => operands_ready + 1,
            OpcodeClass::Load | OpcodeClass::Store => match opcode {
                Opcode::LoadShared | Opcode::StoreShared => operands_ready + exec.shared_mem,
                Opcode::LoadConst => operands_ready + exec.const_mem,
                _ => {
                    let address = self.addresses.next_address(warp_id);
                    self.memory.access_global(address, operands_ready)
                }
            },
        }
    }

    fn retire_warp(&mut self, warp_id: WarpId, cycle: Cycle) {
        self.status[warp_id.index()] = WarpStatus::Finished;
        self.active.retain(|&w| w != warp_id);
        self.regfile.warp_deactivated(warp_id, cycle);
        self.finished += 1;
    }

    fn demote_warp(&mut self, warp_id: WarpId, resume_at: Cycle, cycle: Cycle) {
        self.status[warp_id.index()] = WarpStatus::InactiveUntil(resume_at);
        self.active.retain(|&w| w != warp_id);
        self.regfile.warp_deactivated(warp_id, cycle);
        self.wakeups.push(resume_at, warp_id);
    }

    /// Chooses the next warp to activate: never-started warps first (the
    /// pending cursor, in index order), then the eligible demoted warp with
    /// the earliest completed operation (lowest index on ties) — the
    /// reference engine's activation order, without the scan.
    fn pick_activation_candidate(&mut self, cycle: Cycle) -> Option<WarpId> {
        if self.pending_cursor < self.status.len() {
            let id = WarpId(self.pending_cursor as u32);
            debug_assert_eq!(self.status[id.index()], WarpStatus::Pending);
            self.pending_cursor += 1;
            return Some(id);
        }
        self.wakeups.pop_eligible(cycle)
    }
}

impl<'a> SmEngine<'a> for FastEngine<'a> {
    fn with_parts(
        kernel: &'a Kernel,
        config: &'a SmConfig,
        regfile: &'a mut dyn RegisterFileModel,
        memory: MemoryHierarchy,
        addresses: AddressGenerator,
        warp_seeds: &[u64],
    ) -> Self {
        let code = DecodedKernel::new(kernel);
        let n = warp_seeds.len();
        let stats = SimStats {
            warps_resident: n,
            ..SimStats::default()
        };
        let active_capacity = config.active_warps.max(1);
        FastEngine {
            config,
            regfile,
            memory,
            addresses,
            status: vec![WarpStatus::Pending; n],
            block: vec![code.entry; n],
            pc: vec![0; n],
            rngs: warp_seeds.iter().map(|&s| BranchRng::new(s)).collect(),
            reg_ready: vec![0; n * code.nregs],
            max_pending: vec![0; n],
            loop_left: vec![u32::MAX; n * code.nblocks],
            code,
            active: Vec::with_capacity(active_capacity),
            snapshot: Vec::with_capacity(active_capacity),
            pending_cursor: 0,
            wakeups: WakeupQueue::with_capacity(n),
            collectors: vec![0; config.operand_collectors.max(1)],
            stats,
            finished: 0,
        }
    }

    fn is_done(&self) -> bool {
        self.finished >= self.status.len()
    }

    fn note_idle(&mut self) {
        self.stats.idle_cycles += 1;
    }

    fn issue_cycle(&mut self, cycle: Cycle) -> usize {
        let len = self.active.len();
        if len == 0 {
            return 0;
        }
        // Rotate the starting warp each cycle for round-robin fairness; the
        // snapshot keeps mid-cycle retires/demotions from shifting the walk.
        self.snapshot.clear();
        self.snapshot.extend_from_slice(&self.active);
        let start = (cycle as usize) % len;
        let mut issued = 0;
        for offset in 0..len {
            if issued >= self.config.issue_width {
                break;
            }
            let warp_id = self.snapshot[(start + offset) % len];
            if self.try_issue(warp_id, cycle) {
                issued += 1;
            }
        }
        issued
    }

    fn refill_active_pool(&mut self, cycle: Cycle) {
        while self.active.len() < self.config.active_warps {
            let Some(warp_id) = self.pick_activation_candidate(cycle) else {
                break;
            };
            let block = BlockId(self.block[warp_id.index()]);
            let ready = self.regfile.warp_activated(warp_id, block, cycle);
            self.status[warp_id.index()] = if ready > cycle {
                WarpStatus::StalledUntil(ready)
            } else {
                WarpStatus::Ready
            };
            self.active.push(warp_id);
            self.stats.warp_activations += 1;
        }
    }

    fn next_event_after(&mut self, cycle: Cycle) -> Cycle {
        let mut next = Cycle::MAX;
        for &id in &self.active {
            match self.status[id.index()] {
                WarpStatus::StalledUntil(t) if t > cycle => next = next.min(t),
                // A ready active warp could not issue this cycle only due to
                // collectors or MSHRs; re-check next cycle.
                WarpStatus::Ready => next = next.min(cycle + 1),
                _ => {}
            }
        }
        if self.pending_cursor < self.status.len() {
            next = next.min(cycle + 1);
        }
        if let Some(t) = self.wakeups.next_wake_after(cycle) {
            next = next.min(t);
        }
        for &busy in &self.collectors {
            if busy > cycle {
                next = next.min(busy);
            }
        }
        if next == Cycle::MAX {
            cycle + 1
        } else {
            next
        }
    }

    fn finalize(mut self, cycle: Cycle) -> SimStats {
        self.stats.cycles = cycle.max(1);
        self.stats.warps_completed = self.finished;
        self.stats.truncated = self.finished < self.status.len();
        self.stats.regfile_accesses = self.regfile.access_counts();
        self.stats.regfile_accesses.cycles = self.stats.cycles;
        self.stats.register_cache_hit_rate = self.regfile.register_cache_hit_rate();
        self.stats.prefetch_stall_cycles = self.regfile.prefetch_stall_cycles();
        self.stats.memory = self.memory.stats();
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SmConfig;
    use crate::regfile::DirectRegisterFile;
    use ltrf_isa::{KernelBuilder, LaunchConfig};

    fn mov_kernel(warps: u32) -> SimWorkload {
        let mut b = KernelBuilder::new("fast-unit", 16);
        let e = b.entry_block();
        for i in 0..6usize {
            b.push(e, Opcode::Mov, Some(ArchReg::new(i as u8)), &[]);
        }
        b.exit(e);
        b.launch(LaunchConfig::new(warps, 1, 0));
        SimWorkload::new(b.build().unwrap())
    }

    /// Mirror of the reference engine's pinning test: a demoted warp whose
    /// wakeup has passed (eligible but unadmitted) must not bound the
    /// skip-ahead jump.
    #[test]
    fn next_event_ignores_due_wakeups() {
        let workload = mov_kernel(2);
        let config = SmConfig {
            max_warps: 2,
            active_warps: 1,
            ..SmConfig::default()
        };
        let mut rf = DirectRegisterFile::new(config.regfile);
        let mut engine = FastEngine::new(&workload, &config, &mut rf);
        engine.pending_cursor = 2; // both warps have been activated once
        engine.status[0] = WarpStatus::StalledUntil(100);
        engine.status[1] = WarpStatus::InactiveUntil(5);
        engine.active.push(WarpId(0));
        engine.wakeups.push(5, WarpId(1));
        assert_eq!(engine.next_event_after(10), 100);
        // The due warp is preserved and still activates when a slot opens.
        engine.active.clear();
        assert_eq!(engine.pick_activation_candidate(10), Some(WarpId(1)));
    }

    /// Never-started warps are a cursor into the warp array: activation
    /// consumes them in index order before any demoted warp.
    #[test]
    fn pending_cursor_activates_in_index_order_before_wakeups() {
        let workload = mov_kernel(3);
        let config = SmConfig {
            max_warps: 3,
            active_warps: 1,
            ..SmConfig::default()
        };
        let mut rf = DirectRegisterFile::new(config.regfile);
        let mut engine = FastEngine::new(&workload, &config, &mut rf);
        // Warp 0 started and was demoted; warps 1 and 2 are still Pending.
        engine.pending_cursor = 1;
        engine.status[0] = WarpStatus::InactiveUntil(0);
        engine.wakeups.push(0, WarpId(0));
        assert_eq!(engine.pick_activation_candidate(10), Some(WarpId(1)));
        assert_eq!(engine.pick_activation_candidate(10), Some(WarpId(2)));
        assert_eq!(engine.pick_activation_candidate(10), Some(WarpId(0)));
        assert_eq!(engine.pick_activation_candidate(10), None);
    }

    /// The decoder flattens blocks and computes the scoreboard stride from
    /// the highest register index actually used.
    #[test]
    fn decoded_kernel_shape() {
        let workload = mov_kernel(1);
        let code = DecodedKernel::new(&workload.kernel);
        assert_eq!(code.nblocks, workload.kernel.cfg.block_count());
        assert_eq!(code.insts.len(), 6);
        assert_eq!(code.nregs, 6, "r0..r5 written");
        assert_eq!(code.entry, workload.kernel.cfg.entry().0);
        assert!(code.terminators[code.entry as usize].is_some());
    }
}
