//! The event-driven wakeup queue of the fast engine.
//!
//! The reference engine finds the next warp to re-activate — and the next
//! cycle at which anything can happen — by scanning every resident warp.
//! [`WakeupQueue`] replaces both scans with two binary heaps keyed on
//! `(wakeup_cycle, warp_id)`:
//!
//! * the **future** heap holds warps whose pending operation completes
//!   strictly after the current cycle;
//! * the **eligible** heap holds warps whose wakeup cycle has already
//!   passed but that could not yet be re-admitted because the active pool
//!   was full.
//!
//! Both pops are deterministic: the smallest `(cycle, warp)` pair wins, which
//! reproduces exactly the reference scheduler's "earliest completion first,
//! lowest warp index on ties" activation order (its linear scan keeps the
//! first index among equal wakeup cycles). The split matters for skip-ahead
//! correctness: warps that are *eligible but unadmitted* must not drag the
//! next-event horizon backwards, so [`WakeupQueue::next_wake_after`] first
//! drains every entry at or before `now` into the eligible heap and only
//! then reports the earliest strictly-future wakeup.
//!
//! The queue assumes the simulation clock is monotonically non-decreasing
//! across calls, which the engine guarantees (`cycle` only moves forward).

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::types::{Cycle, WarpId};

/// A deterministic priority queue of `(wakeup_cycle, warp)` events.
#[derive(Debug, Clone, Default)]
pub struct WakeupQueue {
    /// Warps whose wakeup cycle is still in the future (min-heap).
    future: BinaryHeap<Reverse<(Cycle, u32)>>,
    /// Warps whose wakeup cycle has passed but that have not been popped
    /// (the active pool was full when they became eligible).
    eligible: BinaryHeap<Reverse<(Cycle, u32)>>,
}

impl WakeupQueue {
    /// Creates an empty queue.
    #[must_use]
    pub fn new() -> Self {
        WakeupQueue::default()
    }

    /// Creates an empty queue with room for `capacity` warps, so steady-state
    /// operation never reallocates.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        WakeupQueue {
            future: BinaryHeap::with_capacity(capacity),
            eligible: BinaryHeap::with_capacity(capacity),
        }
    }

    /// Schedules `warp` to become eligible at cycle `wake_at`.
    pub fn push(&mut self, wake_at: Cycle, warp: WarpId) {
        self.future.push(Reverse((wake_at, warp.0)));
    }

    /// Number of scheduled warps (future and eligible).
    #[must_use]
    pub fn len(&self) -> usize {
        self.future.len() + self.eligible.len()
    }

    /// Returns `true` if no warp is scheduled.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.future.is_empty() && self.eligible.is_empty()
    }

    /// Moves every entry whose wakeup cycle is at or before `now` from the
    /// future heap into the eligible heap.
    fn drain_due(&mut self, now: Cycle) {
        while let Some(&Reverse((at, _))) = self.future.peek() {
            if at > now {
                break;
            }
            let entry = self.future.pop().expect("peeked entry exists");
            self.eligible.push(entry);
        }
    }

    /// Pops the next eligible warp at `now`: the warp with the smallest
    /// `(wakeup_cycle, warp_id)` among those whose wakeup cycle is at or
    /// before `now`. Returns `None` if every scheduled warp is still in the
    /// future.
    pub fn pop_eligible(&mut self, now: Cycle) -> Option<WarpId> {
        self.drain_due(now);
        match self.eligible.peek() {
            Some(&Reverse((at, _))) if at <= now => {
                let Reverse((_, warp)) = self.eligible.pop().expect("peeked entry exists");
                Some(WarpId(warp))
            }
            _ => None,
        }
    }

    /// The earliest wakeup cycle strictly after `now`, or `None` if no
    /// scheduled warp wakes later than `now`.
    ///
    /// Entries already due (wakeup at or before `now`) are moved to the
    /// eligible heap and do **not** count: a warp that is eligible but
    /// unadmitted is waiting for an active-pool slot, not for time to pass,
    /// so it must not shorten a skip-ahead jump.
    pub fn next_wake_after(&mut self, now: Cycle) -> Option<Cycle> {
        self.drain_due(now);
        self.future.peek().map(|&Reverse((at, _))| at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_cycle_then_index_order() {
        let mut q = WakeupQueue::new();
        q.push(10, WarpId(3));
        q.push(5, WarpId(7));
        q.push(10, WarpId(1));
        assert_eq!(q.len(), 3);
        assert_eq!(q.pop_eligible(10), Some(WarpId(7)));
        assert_eq!(q.pop_eligible(10), Some(WarpId(1)));
        assert_eq!(q.pop_eligible(10), Some(WarpId(3)));
        assert_eq!(q.pop_eligible(10), None);
        assert!(q.is_empty());
    }

    #[test]
    fn future_entries_are_not_eligible() {
        let mut q = WakeupQueue::new();
        q.push(100, WarpId(0));
        assert_eq!(q.pop_eligible(99), None);
        assert_eq!(q.next_wake_after(99), Some(100));
        assert_eq!(q.pop_eligible(100), Some(WarpId(0)));
    }

    #[test]
    fn due_entries_do_not_shorten_skip_ahead() {
        let mut q = WakeupQueue::new();
        q.push(4, WarpId(2));
        q.push(90, WarpId(5));
        // Warp 2 is due at cycle 10 but unadmitted; the next *time* event is
        // warp 5's wakeup.
        assert_eq!(q.next_wake_after(10), Some(90));
        // The due warp is still there, preserved in the eligible heap.
        assert_eq!(q.pop_eligible(10), Some(WarpId(2)));
        assert_eq!(q.next_wake_after(90), None);
        assert_eq!(q.pop_eligible(90), Some(WarpId(5)));
    }

    #[test]
    fn with_capacity_starts_empty() {
        let q = WakeupQueue::with_capacity(64);
        assert!(q.is_empty());
        assert_eq!(q.len(), 0);
    }
}
