//! # ltrf-sim
//!
//! A cycle-level GPU timing simulator, built from scratch as the substrate
//! for the LTRF reproduction (the role GPGPU-Sim v3.2.2 plays in the
//! original study).
//!
//! The unit of simulation is one Maxwell-like SM (Table 3 of the paper): 64
//! resident warps, a two-level warp scheduler with a configurable active
//! pool, operand collectors in front of a banked register file, per-opcode
//! execution latencies, and a full memory hierarchy (L1D, last-level cache,
//! and FR-FCFS-style GDDR5 DRAM channels). [`simulate`] runs a kernel on a
//! single SM with a private hierarchy; [`simulate_gpu`] runs a whole chip —
//! [`GpuConfig::sm_count`] SMs dealt CTAs round-robin, contending for a
//! shared, sliced L2 and the DRAM channels — and reports aggregated
//! [`GpuStats`] (per-SM IPC, L2 hit rate, DRAM row-buffer and queueing
//! behaviour). An `sm_count = 1` GPU reproduces the single-SM engine bit
//! for bit.
//!
//! The register file itself is pluggable: the SM pipeline talks to a
//! [`RegisterFileModel`] trait object, and the organizations studied in the
//! paper (baseline, register-file cache, SHRF, LTRF, LTRF+, ideal) are
//! implemented against this trait in the `ltrf-core` crate. Two reference
//! implementations live here — [`DirectRegisterFile`] (the conventional
//! non-cached design) and [`IdealRegisterFile`] (capacity without latency) —
//! so the simulator is usable and testable on its own.
//!
//! ```
//! use ltrf_isa::straight_line_kernel;
//! use ltrf_sim::{simulate, DirectRegisterFile, SimWorkload, SmConfig};
//!
//! let kernel = straight_line_kernel("demo", 16, 64);
//! let config = SmConfig::default();
//! let mut regfile = DirectRegisterFile::new(config.regfile);
//! let stats = simulate(&SimWorkload::new(kernel), &config, &mut regfile);
//! assert!(stats.ipc() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod config;
mod driver;
mod engine;
mod fast;
pub mod gpu;
pub mod interconnect;
pub mod memory;
mod regfile;
mod stats;
mod types;
pub mod wakeup;
mod warp;

pub use config::{ExecLatencies, GpuConfig, L2Config, MemoryConfig, RegFileTiming, SmConfig};
pub use engine::{simulate, simulate_with, EngineKind, SimWorkload};
pub use gpu::{simulate_gpu, simulate_gpu_with, GpuStats};
pub use interconnect::{
    AddressDecoder, Interconnect, InterconnectConfig, InterconnectStats, InterleaveMode, Topology,
};
pub use memory::{AddressGenerator, MemoryBehavior, MemoryStats, SharedMemory};
pub use regfile::{DirectRegisterFile, IdealRegisterFile, RegisterFileModel};
pub use stats::SimStats;
pub use types::{BankArbiter, Cycle, WarpId};
pub use wakeup::WakeupQueue;
pub use warp::{WarpContext, WarpStatus};
