//! # ltrf-sim
//!
//! A cycle-level GPU streaming-multiprocessor timing simulator, built from
//! scratch as the substrate for the LTRF reproduction (the role GPGPU-Sim
//! v3.2.2 plays in the original study).
//!
//! The simulator models one Maxwell-like SM (Table 3 of the paper): 64
//! resident warps, a two-level warp scheduler with a configurable active
//! pool, operand collectors in front of a banked register file, per-opcode
//! execution latencies, and a full memory hierarchy (L1D, shared last-level
//! cache, and FR-FCFS-style GDDR5 DRAM channels).
//!
//! The register file itself is pluggable: the SM pipeline talks to a
//! [`RegisterFileModel`] trait object, and the organizations studied in the
//! paper (baseline, register-file cache, SHRF, LTRF, LTRF+, ideal) are
//! implemented against this trait in the `ltrf-core` crate. Two reference
//! implementations live here — [`DirectRegisterFile`] (the conventional
//! non-cached design) and [`IdealRegisterFile`] (capacity without latency) —
//! so the simulator is usable and testable on its own.
//!
//! ```
//! use ltrf_isa::straight_line_kernel;
//! use ltrf_sim::{simulate, DirectRegisterFile, GpuConfig, SimWorkload};
//!
//! let kernel = straight_line_kernel("demo", 16, 64);
//! let config = GpuConfig::default();
//! let mut regfile = DirectRegisterFile::new(config.regfile);
//! let stats = simulate(&SimWorkload::new(kernel), &config, &mut regfile);
//! assert!(stats.ipc() > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod config;
mod engine;
pub mod memory;
mod regfile;
mod stats;
mod types;
mod warp;

pub use config::{ExecLatencies, GpuConfig, MemoryConfig, RegFileTiming};
pub use engine::{simulate, SimWorkload};
pub use memory::{AddressGenerator, MemoryBehavior, MemoryStats};
pub use regfile::{DirectRegisterFile, IdealRegisterFile, RegisterFileModel};
pub use stats::SimStats;
pub use types::{BankArbiter, Cycle, WarpId};
pub use warp::{WarpContext, WarpStatus};
