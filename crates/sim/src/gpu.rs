//! Whole-GPU simulation: N SMs in lock-step over a shared L2 and DRAM.
//!
//! The single-SM engine ([`crate::simulate`]) models the L2 and DRAM without
//! cross-SM competition, which makes memory-contention-sensitive figures
//! optimistic. This module closes that gap:
//!
//! * a **round-robin CTA dispatcher** deals the kernel's thread blocks to
//!   `sm_count` SMs, one wave per SM (matching the single-SM engine's
//!   one-wave simplification), each SM's capacity limited by its
//!   register-file occupancy bound;
//! * every SM runs the same pipeline engine as the single-SM path, with a
//!   private L1/MSHR port onto a
//!   [`SharedMemory`] — a sliced L2 with per-slice service occupancy and the
//!   GDDR5 channel model, so SMs queue against each other for L2 tag
//!   bandwidth, DRAM banks, and channel buses;
//! * the SMs execute in **lock-step** on one thread (the sweep engine
//!   parallelizes across campaign points), with idle-period fast-forwarding
//!   to the earliest next event across all SMs, so a run is deterministic
//!   for a given seed and configuration;
//! * results aggregate into [`GpuStats`]: per-SM pipeline statistics and
//!   IPC, shared-L2 hit rate, and DRAM row-buffer/queueing behaviour.
//!
//! With `sm_count == 1` the simulation delegates to [`crate::simulate`]
//! verbatim — same warp-granular residency, same private hierarchy — so a
//! one-SM GPU reproduces every existing single-SM campaign bit for bit.

use std::cell::RefCell;
use std::rc::Rc;

use serde::{Deserialize, Serialize};

use crate::config::GpuConfig;
use crate::driver::{self, SmEngine};
use crate::engine::{simulate_with, Engine, EngineKind, SimWorkload};
use crate::fast::FastEngine;
use crate::interconnect::InterconnectStats;
use crate::memory::cache::CacheStats;
use crate::memory::dram::DramStats;
use crate::memory::{AddressGenerator, MemoryHierarchy, SharedMemory};
use crate::regfile::RegisterFileModel;
use crate::stats::SimStats;
use crate::types::Cycle;

/// Result of simulating one kernel on a whole GPU.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GpuStats {
    /// Number of SMs simulated.
    pub sm_count: usize,
    /// Simulated cycles until the last SM finished (or the safety cap).
    pub cycles: Cycle,
    /// Dynamic instructions executed across all SMs.
    pub instructions: u64,
    /// Per-SM pipeline statistics, indexed by SM id.
    pub per_sm: Vec<SimStats>,
    /// CTAs the dispatcher placed on each SM.
    pub ctas_per_sm: Vec<u64>,
    /// CTAs in the kernel's grid.
    pub ctas_launched: u64,
    /// CTAs actually dispatched (one wave per SM; the rest of the grid is
    /// not executed, matching the single-SM engine's simplification).
    pub ctas_dispatched: u64,
    /// Shared-L2 statistics (GPU-global).
    pub l2: CacheStats,
    /// DRAM statistics (GPU-global), including row-buffer hit behaviour and
    /// bank/bus queueing delay.
    pub dram: DramStats,
    /// Cycles requests spent queued behind busy shared-L2 slices.
    pub l2_queue_wait_cycles: u64,
    /// Queue wait of the least loaded L2 slice (slice-imbalance floor).
    pub l2_slice_wait_min: u64,
    /// Queue wait of the most loaded L2 slice (slice-imbalance ceiling).
    pub l2_slice_wait_max: u64,
    /// SM↔L2 interconnect statistics (all-zero latencies under the default
    /// `Ideal` topology and for single-SM runs).
    pub noc: InterconnectStats,
    /// True if any SM hit the safety cycle cap before finishing.
    pub truncated: bool,
}

impl GpuStats {
    /// Whole-GPU instructions per cycle.
    #[must_use]
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// Per-SM IPC over the whole-GPU cycle count, indexed by SM id.
    #[must_use]
    pub fn per_sm_ipc(&self) -> Vec<f64> {
        self.per_sm
            .iter()
            .map(|sm| {
                if self.cycles == 0 {
                    0.0
                } else {
                    sm.instructions as f64 / self.cycles as f64
                }
            })
            .collect()
    }

    /// Shared-L2 hit rate in `[0, 1]`.
    #[must_use]
    pub fn l2_hit_rate(&self) -> f64 {
        self.l2.hit_rate()
    }

    /// Collapses the run into one whole-GPU [`SimStats`]: instruction,
    /// warp, and register-file counters are summed across SMs (L1 and
    /// MSHR statistics too), the `llc`/`dram` fields carry the shared
    /// structures' totals, and the cycle count is the GPU's.
    #[must_use]
    pub fn aggregate(&self) -> SimStats {
        let cycles = self.cycles.max(1);
        let mut agg = SimStats {
            cycles,
            truncated: self.truncated,
            ..SimStats::default()
        };
        let mut hit_rate_sum = 0.0;
        let mut hit_rate_count = 0usize;
        for sm in &self.per_sm {
            agg.instructions += sm.instructions;
            agg.warps_completed += sm.warps_completed;
            agg.warps_resident += sm.warps_resident;
            agg.idle_cycles += sm.idle_cycles;
            agg.prefetch_stall_cycles += sm.prefetch_stall_cycles;
            agg.warp_activations += sm.warp_activations;
            agg.regfile_accesses.mrf_reads += sm.regfile_accesses.mrf_reads;
            agg.regfile_accesses.mrf_writes += sm.regfile_accesses.mrf_writes;
            agg.regfile_accesses.rfc_reads += sm.regfile_accesses.rfc_reads;
            agg.regfile_accesses.rfc_writes += sm.regfile_accesses.rfc_writes;
            agg.regfile_accesses.wcb_accesses += sm.regfile_accesses.wcb_accesses;
            agg.memory.l1d.hits += sm.memory.l1d.hits;
            agg.memory.l1d.misses += sm.memory.l1d.misses;
            agg.memory.global_requests += sm.memory.global_requests;
            agg.memory.mshr_stalls += sm.memory.mshr_stalls;
            if let Some(rate) = sm.register_cache_hit_rate {
                hit_rate_sum += rate;
                hit_rate_count += 1;
            }
        }
        agg.regfile_accesses.cycles = cycles;
        agg.register_cache_hit_rate = if hit_rate_count == 0 {
            None
        } else {
            Some(hit_rate_sum / hit_rate_count as f64)
        };
        agg.memory.llc = self.l2;
        agg.memory.dram = self.dram;
        agg.memory.l2_queue_wait_cycles = self.l2_queue_wait_cycles;
        agg.memory.l2_slice_wait_min = self.l2_slice_wait_min;
        agg.memory.l2_slice_wait_max = self.l2_slice_wait_max;
        agg.memory.noc = self.noc;
        agg
    }

    /// Wraps a single-SM run into GPU statistics (the `sm_count == 1`
    /// delegation path).
    fn from_single_sm(stats: SimStats, warps_per_block: u64, ctas_launched: u64) -> Self {
        let ctas = (stats.warps_resident as u64).div_ceil(warps_per_block.max(1));
        GpuStats {
            sm_count: 1,
            cycles: stats.cycles,
            instructions: stats.instructions,
            ctas_per_sm: vec![ctas],
            ctas_launched,
            ctas_dispatched: ctas,
            l2: stats.memory.llc,
            dram: stats.memory.dram,
            l2_queue_wait_cycles: stats.memory.l2_queue_wait_cycles,
            l2_slice_wait_min: stats.memory.l2_slice_wait_min,
            l2_slice_wait_max: stats.memory.l2_slice_wait_max,
            noc: stats.memory.noc,
            truncated: stats.truncated,
            per_sm: vec![stats],
        }
    }
}

/// The dispatcher's plan for one SM: which CTAs it hosts and the resident
/// warps they contribute.
#[derive(Debug, Clone, PartialEq, Eq)]
struct SmAssignment {
    ctas: u64,
    warps: usize,
    /// Global index of the SM's first warp (for address-region sharding and
    /// per-warp seed derivation).
    first_warp: usize,
}

/// Deals the grid's CTAs to `sm_count` SMs round-robin, one wave per SM.
///
/// Each SM accepts full CTAs until its register-file occupancy bound is
/// reached; a CTA wider than the whole SM is clamped to the SM's warp
/// capacity (partial CTA, mirroring the single-SM engine's warp-granular
/// residency cap).
fn dispatch_ctas(
    warps_per_block: u64,
    blocks_per_grid: u64,
    warp_capacity: usize,
    sm_count: usize,
) -> Vec<SmAssignment> {
    let wpb = warps_per_block.max(1);
    let warps_per_cta = (wpb as usize).min(warp_capacity.max(1));
    let cta_capacity = ((warp_capacity / warps_per_cta) as u64).max(1);
    let mut ctas = vec![0u64; sm_count];
    let mut remaining = blocks_per_grid;
    'deal: loop {
        let mut progress = false;
        for slot in ctas.iter_mut() {
            if remaining == 0 {
                break 'deal;
            }
            if *slot < cta_capacity {
                *slot += 1;
                remaining -= 1;
                progress = true;
            }
        }
        if !progress {
            break;
        }
    }
    let mut first_warp = 0usize;
    ctas.into_iter()
        .map(|ctas| {
            let warps = ctas as usize * warps_per_cta;
            let assignment = SmAssignment {
                ctas,
                warps,
                first_warp,
            };
            first_warp += warps;
            assignment
        })
        .collect()
}

/// Runs `workload` on a whole GPU: `config.sm_count` SMs, each with its own
/// register-file model from `regfiles`, contending for the shared L2 and
/// DRAM.
///
/// With `sm_count == 1` this is exactly [`crate::simulate`] (same residency rule,
/// same private hierarchy), so single-SM campaigns reproduce bit for bit.
///
/// # Panics
///
/// Panics if `regfiles.len() != config.sm_count.max(1)` — the caller builds
/// one organization instance per SM.
pub fn simulate_gpu(
    workload: &SimWorkload,
    config: &GpuConfig,
    regfiles: &mut [Box<dyn RegisterFileModel>],
) -> GpuStats {
    simulate_gpu_with(workload, config, regfiles, EngineKind::default())
}

/// Builds one engine per SM (private L1/MSHR port on the shared L2, sharded
/// address stream, per-warp seeds derived from the *global* warp index) and
/// drives them in lock-step.
fn run_multi_sm<'a, E: SmEngine<'a>>(
    workload: &'a SimWorkload,
    config: &'a GpuConfig,
    regfiles: &'a mut [Box<dyn RegisterFileModel>],
    plan: &[SmAssignment],
    shared: &Rc<RefCell<SharedMemory>>,
    total_warps: usize,
) -> (Vec<SimStats>, Cycle) {
    let engines: Vec<E> = regfiles
        .iter_mut()
        .zip(plan)
        .enumerate()
        .map(|(sm_index, (regfile, assignment))| {
            let seeds: Vec<u64> = (0..assignment.warps as u64)
                .map(|w| {
                    let global = assignment.first_warp as u64 + w;
                    workload.seed ^ (0x9E37 + global * 0x85EB_CA6B)
                })
                .collect();
            E::with_parts(
                &workload.kernel,
                &config.sm,
                regfile.as_mut(),
                MemoryHierarchy::shared_port(&config.sm.memory, Rc::clone(shared), sm_index),
                AddressGenerator::sharded(
                    workload.memory,
                    assignment.warps,
                    workload.seed,
                    assignment.first_warp,
                    total_warps.max(1),
                ),
                &seeds,
            )
        })
        .collect();
    driver::run_lockstep(engines, config.sm.max_cycles)
}

/// Runs `workload` on a whole GPU with an explicitly chosen engine
/// implementation; [`simulate_gpu`] is this with [`EngineKind::default`].
///
/// # Panics
///
/// Panics if `regfiles.len() != config.sm_count.max(1)`.
pub fn simulate_gpu_with(
    workload: &SimWorkload,
    config: &GpuConfig,
    regfiles: &mut [Box<dyn RegisterFileModel>],
    kind: EngineKind,
) -> GpuStats {
    let sm_count = config.sm_count.max(1);
    assert_eq!(
        regfiles.len(),
        sm_count,
        "simulate_gpu needs one register-file model per SM"
    );
    let kernel = &workload.kernel;
    let launch = kernel.launch();
    if sm_count == 1 {
        let stats = simulate_with(workload, &config.sm, regfiles[0].as_mut(), kind);
        return GpuStats::from_single_sm(
            stats,
            u64::from(launch.warps_per_block),
            u64::from(launch.blocks_per_grid),
        );
    }

    let warp_capacity = config.sm.resident_warps(kernel.regs_per_thread());
    let plan = dispatch_ctas(
        u64::from(launch.warps_per_block),
        u64::from(launch.blocks_per_grid),
        warp_capacity,
        sm_count,
    );
    let total_warps: usize = plan.iter().map(|a| a.warps).sum();

    let shared = Rc::new(RefCell::new(SharedMemory::with_interconnect(
        &config.sm.memory,
        &config.l2,
        &config.interconnect,
        sm_count,
    )));
    let (per_sm, cycle) = match kind {
        EngineKind::Fast => {
            run_multi_sm::<FastEngine>(workload, config, regfiles, &plan, &shared, total_warps)
        }
        EngineKind::Reference => {
            run_multi_sm::<Engine>(workload, config, regfiles, &plan, &shared, total_warps)
        }
    };
    let (l2, dram, l2_queue_wait_cycles, (slice_min, slice_max), noc) = {
        let shared = shared.borrow();
        (
            shared.llc_stats(),
            shared.dram_stats(),
            shared.l2_queue_wait_cycles(),
            shared.slice_wait_bounds(),
            shared.noc_stats(),
        )
    };
    GpuStats {
        sm_count,
        cycles: cycle.max(1),
        instructions: per_sm.iter().map(|s| s.instructions).sum(),
        ctas_per_sm: plan.iter().map(|a| a.ctas).collect(),
        ctas_launched: u64::from(launch.blocks_per_grid),
        ctas_dispatched: plan.iter().map(|a| a.ctas).sum(),
        l2,
        dram,
        l2_queue_wait_cycles,
        l2_slice_wait_min: slice_min,
        l2_slice_wait_max: slice_max,
        noc,
        truncated: per_sm.iter().any(|s| s.truncated),
        per_sm,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SmConfig;
    use crate::engine::simulate;
    use crate::regfile::DirectRegisterFile;
    use ltrf_isa::{ArchReg, Kernel, KernelBuilder, LaunchConfig, Opcode};

    fn memory_kernel(warps_per_block: u32, blocks: u32) -> Kernel {
        let mut b = KernelBuilder::new("gpu-mem", 16);
        let entry = b.entry_block();
        let body = b.add_block();
        let exit = b.add_block();
        b.push(entry, Opcode::Mov, Some(ArchReg::new(0)), &[]);
        b.jump(entry, body);
        b.push(
            body,
            Opcode::LoadGlobal,
            Some(ArchReg::new(1)),
            &[ArchReg::new(0)],
        );
        b.push(
            body,
            Opcode::FAlu,
            Some(ArchReg::new(2)),
            &[ArchReg::new(1)],
        );
        b.loop_branch(body, body, exit, 8);
        b.push(
            exit,
            Opcode::StoreGlobal,
            None,
            &[ArchReg::new(0), ArchReg::new(2)],
        );
        b.exit(exit);
        b.launch(LaunchConfig::new(warps_per_block, blocks, 0));
        b.build().unwrap()
    }

    fn regfiles(n: usize, config: &SmConfig) -> Vec<Box<dyn RegisterFileModel>> {
        (0..n)
            .map(|_| {
                Box::new(DirectRegisterFile::new(config.regfile)) as Box<dyn RegisterFileModel>
            })
            .collect()
    }

    fn gpu_config(sm_count: usize) -> GpuConfig {
        GpuConfig {
            sm_count,
            sm: SmConfig {
                max_warps: 16,
                active_warps: 4,
                ..SmConfig::default()
            },
            ..GpuConfig::default()
        }
    }

    #[test]
    fn round_robin_dispatch_balances_ctas() {
        let plan = dispatch_ctas(4, 10, 16, 4);
        assert_eq!(
            plan.iter().map(|a| a.ctas).collect::<Vec<_>>(),
            vec![3, 3, 2, 2]
        );
        assert_eq!(plan[0].warps, 12);
        assert_eq!(plan[1].first_warp, 12);
        let dispatched: u64 = plan.iter().map(|a| a.ctas).sum();
        assert_eq!(dispatched, 10);
    }

    #[test]
    fn dispatch_respects_occupancy_and_one_wave() {
        // 8 warps per CTA, 64-warp grid, SMs hold 16 warps: 2 CTAs per SM,
        // so 2 SMs execute 4 of the 8 CTAs in their single wave.
        let plan = dispatch_ctas(8, 8, 16, 2);
        assert!(plan.iter().all(|a| a.ctas == 2 && a.warps == 16));
        // A CTA wider than the SM is clamped to the SM's capacity.
        let clamped = dispatch_ctas(32, 4, 16, 2);
        assert!(clamped.iter().all(|a| a.ctas == 1 && a.warps == 16));
    }

    #[test]
    fn one_sm_gpu_matches_single_sm_engine_bit_for_bit() {
        let kernel = memory_kernel(4, 4);
        let workload = SimWorkload::new(kernel);
        let config = gpu_config(1);
        let mut rf = DirectRegisterFile::new(config.sm.regfile);
        let single = simulate(&workload, &config.sm, &mut rf);
        let mut rfs = regfiles(1, &config.sm);
        let gpu = simulate_gpu(&workload, &config, &mut rfs);
        assert_eq!(gpu.per_sm.len(), 1);
        assert_eq!(gpu.per_sm[0], single);
        assert_eq!(gpu.cycles, single.cycles);
        assert_eq!(gpu.instructions, single.instructions);
    }

    /// The multi-SM lock-step schedule (SMs issue in index order at every
    /// visited cycle, global fast-forward to the earliest next event) must
    /// produce bit-identical `GpuStats` from both engines — including the
    /// shared L2/DRAM counters, which observe the cross-SM request
    /// interleaving and would diverge on any ordering slip.
    #[test]
    fn fast_gpu_matches_reference_gpu_bit_for_bit() {
        for (blocks, sm_count, seed) in [(8, 4, 42), (16, 2, 7), (4, 4, 0xC0FFEE)] {
            let kernel = memory_kernel(4, blocks);
            let workload = SimWorkload::new(kernel).with_seed(seed);
            let config = gpu_config(sm_count);
            let fast = simulate_gpu_with(
                &workload,
                &config,
                &mut regfiles(sm_count, &config.sm),
                EngineKind::Fast,
            );
            let reference = simulate_gpu_with(
                &workload,
                &config,
                &mut regfiles(sm_count, &config.sm),
                EngineKind::Reference,
            );
            assert_eq!(fast, reference, "GPU engines diverged at {sm_count} SMs");
        }
    }

    #[test]
    fn multi_sm_runs_are_deterministic() {
        let kernel = memory_kernel(4, 8);
        let workload = SimWorkload::new(kernel).with_seed(42);
        let config = gpu_config(4);
        let a = simulate_gpu(&workload, &config, &mut regfiles(4, &config.sm));
        let b = simulate_gpu(&workload, &config, &mut regfiles(4, &config.sm));
        assert_eq!(a, b);
    }

    #[test]
    fn more_sms_execute_more_instructions_under_shared_contention() {
        let kernel = memory_kernel(4, 16);
        let workload = SimWorkload::new(kernel).with_seed(7);
        let one = {
            let config = gpu_config(1);
            simulate_gpu(&workload, &config, &mut regfiles(1, &config.sm))
        };
        let four = {
            let config = gpu_config(4);
            simulate_gpu(&workload, &config, &mut regfiles(4, &config.sm))
        };
        assert!(!four.truncated);
        assert!(four.instructions > one.instructions, "4 SMs run more CTAs");
        assert!(four.ipc() > one.ipc(), "parallel SMs raise chip IPC");
        let dram_total = four.dram.requests;
        assert!(dram_total >= one.dram.requests);
        // The shared structures saw traffic from several SMs.
        assert_eq!(four.ctas_per_sm.len(), 4);
        assert!(four.ctas_per_sm.iter().all(|&c| c > 0));
    }

    /// Acceptance criterion: at 16 SMs, Crossbar and Mesh2D must be
    /// measurably different from each other (and from Ideal) in NoC latency
    /// and L2 queueing — topology is a real model, not a label.
    #[test]
    fn crossbar_and_mesh_topologies_diverge_at_16_sms() {
        use crate::interconnect::{InterconnectConfig, Topology};
        let kernel = memory_kernel(4, 32);
        let workload = SimWorkload::new(kernel).with_seed(11);
        let run = |topology| {
            let config =
                gpu_config(16).with_interconnect(InterconnectConfig::with_topology(topology));
            simulate_gpu(&workload, &config, &mut regfiles(16, &config.sm))
        };
        let ideal = run(Topology::Ideal);
        let xbar = run(Topology::Crossbar);
        let mesh = run(Topology::Mesh2D);
        assert_eq!(ideal.noc.total_latency, 0, "ideal transport is free");
        assert!(
            xbar.noc.mean_latency() > 0.0,
            "crossbar transport costs cycles"
        );
        assert!(
            mesh.noc.mean_latency() > xbar.noc.mean_latency(),
            "mesh pays per-hop distance a crossbar does not ({} vs {})",
            mesh.noc.mean_latency(),
            xbar.noc.mean_latency()
        );
        assert_ne!(
            (mesh.l2_queue_wait_cycles, mesh.noc.total_latency),
            (xbar.l2_queue_wait_cycles, xbar.noc.total_latency),
            "topologies must leave distinguishable contention signatures"
        );
        assert!(ideal.cycles <= xbar.cycles && ideal.cycles <= mesh.cycles);
        assert_eq!(
            (ideal.instructions, xbar.instructions, mesh.instructions),
            (ideal.instructions, ideal.instructions, ideal.instructions),
            "topology changes timing, never the work performed"
        );
    }

    #[test]
    fn aggregate_sums_instructions_and_carries_shared_stats() {
        let kernel = memory_kernel(4, 8);
        let workload = SimWorkload::new(kernel).with_seed(3);
        let config = gpu_config(2);
        let gpu = simulate_gpu(&workload, &config, &mut regfiles(2, &config.sm));
        let agg = gpu.aggregate();
        assert_eq!(agg.instructions, gpu.instructions);
        assert_eq!(agg.cycles, gpu.cycles);
        assert_eq!(agg.memory.llc, gpu.l2);
        assert_eq!(agg.memory.dram, gpu.dram);
        assert_eq!(
            agg.warps_resident,
            gpu.per_sm.iter().map(|s| s.warps_resident).sum::<usize>()
        );
        assert_eq!(gpu.per_sm_ipc().len(), 2);
    }
}
