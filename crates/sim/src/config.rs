//! Simulated GPU configuration (the paper's Table 3).
//!
//! Two levels of configuration exist:
//!
//! * [`SmConfig`] describes one streaming multiprocessor — pipeline widths,
//!   functional-unit latencies, register-file organization parameters, and
//!   the memory hierarchy it sees (private L1, plus the capacity/timing of
//!   the L2 and DRAM it shares with every other SM);
//! * [`GpuConfig`] describes the whole chip — how many SMs there are and how
//!   the shared L2 arbitrates their combined request stream
//!   ([`L2Config`]).
//!
//! A [`GpuConfig`] with `sm_count == 1` is definitionally the single-SM
//! simulation the per-figure campaigns have always run.

use serde::{Deserialize, Serialize};

use crate::interconnect::InterconnectConfig;
use crate::types::Cycle;

/// Execution latencies per functional-unit class, in core cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ExecLatencies {
    /// Simple integer ALU / move / predicate operations.
    pub simple_alu: Cycle,
    /// Integer multiply.
    pub mul_alu: Cycle,
    /// Floating-point operations.
    pub fp_alu: Cycle,
    /// Special-function unit operations.
    pub sfu: Cycle,
    /// Shared-memory access (fixed, on-chip).
    pub shared_mem: Cycle,
    /// Constant-cache access (assumed to hit).
    pub const_mem: Cycle,
    /// Barrier synchronization overhead once all warps arrive.
    pub barrier: Cycle,
}

impl Default for ExecLatencies {
    fn default() -> Self {
        ExecLatencies {
            simple_alu: 4,
            mul_alu: 6,
            fp_alu: 4,
            sfu: 16,
            shared_mem: 24,
            const_mem: 8,
            barrier: 20,
        }
    }
}

/// Memory-hierarchy configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MemoryConfig {
    /// L1 data cache size, in bytes (Table 3: 16 KB).
    pub l1d_bytes: u64,
    /// L1 data cache associativity (4-way).
    pub l1d_ways: usize,
    /// Cache line size, in bytes (128 B).
    pub line_bytes: u64,
    /// L1 hit latency, in cycles.
    pub l1_hit_latency: Cycle,
    /// Shared last-level cache size, in bytes (2 MB).
    pub llc_bytes: u64,
    /// LLC associativity (8-way).
    pub llc_ways: usize,
    /// LLC hit latency (beyond the L1 miss), in cycles.
    pub llc_hit_latency: Cycle,
    /// Number of GDDR5 memory channels (8).
    pub dram_channels: usize,
    /// DRAM banks per channel.
    pub dram_banks_per_channel: usize,
    /// Row-buffer hit service time, in core cycles.
    pub dram_row_hit_latency: Cycle,
    /// Row-buffer miss (precharge + activate + CAS) service time, in core
    /// cycles.
    pub dram_row_miss_latency: Cycle,
    /// Data-burst occupancy of the channel per request, in core cycles.
    pub dram_burst_cycles: Cycle,
    /// Row-buffer size, in bytes.
    pub dram_row_bytes: u64,
    /// Maximum outstanding memory requests per SM (MSHR capacity).
    pub max_outstanding_requests: usize,
}

impl Default for MemoryConfig {
    fn default() -> Self {
        // GDDR5 timing from Table 3 (tCL = tRP = tRCD = 12 ns, tRC = 40 ns)
        // converted to 1137 MHz core cycles: 12 ns ≈ 14 cycles.
        MemoryConfig {
            l1d_bytes: 16 * 1024,
            l1d_ways: 4,
            line_bytes: 128,
            l1_hit_latency: 28,
            llc_bytes: 2 * 1024 * 1024,
            llc_ways: 8,
            llc_hit_latency: 120,
            dram_channels: 8,
            dram_banks_per_channel: 16,
            dram_row_hit_latency: 28,
            dram_row_miss_latency: 75,
            dram_burst_cycles: 4,
            dram_row_bytes: 2048,
            max_outstanding_requests: 64,
        }
    }
}

/// Register-file timing parameters seen by the SM pipeline.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RegFileTiming {
    /// Access latency of the baseline main register file, in cycles.
    pub baseline_mrf_latency: Cycle,
    /// Access latency of the register-file cache, in cycles.
    pub rfc_latency: Cycle,
    /// Number of main-register-file banks.
    pub mrf_banks: usize,
    /// Number of register-file-cache banks.
    pub rfc_banks: usize,
    /// Latency multiplier applied to the main register file (the x-axis of
    /// Figures 11–14; 1.0 is the baseline SRAM design).
    pub mrf_latency_factor: f64,
    /// Extra cycles for a WCB lookup before a register-cache access.
    pub wcb_latency: Cycle,
    /// Traversal latency of the narrow MRF-to-RFC prefetch crossbar.
    pub prefetch_crossbar_latency: Cycle,
}

impl Default for RegFileTiming {
    fn default() -> Self {
        RegFileTiming {
            baseline_mrf_latency: 2,
            rfc_latency: 1,
            mrf_banks: 16,
            rfc_banks: 16,
            mrf_latency_factor: 1.0,
            wcb_latency: 1,
            prefetch_crossbar_latency: 4,
        }
    }
}

impl RegFileTiming {
    /// Effective main-register-file access latency in cycles, after applying
    /// the latency factor (rounded up, minimum one cycle).
    #[must_use]
    pub fn mrf_latency(&self) -> Cycle {
        let scaled = self.baseline_mrf_latency as f64 * self.mrf_latency_factor;
        scaled.ceil().max(1.0) as Cycle
    }

    /// Returns a copy with the given latency factor.
    #[must_use]
    pub fn with_latency_factor(mut self, factor: f64) -> Self {
        self.mrf_latency_factor = factor;
        self
    }
}

/// Full configuration of one simulated streaming multiprocessor, modelled
/// after the paper's Table 3 (NVIDIA Maxwell-like).
///
/// The `memory` field describes the whole hierarchy as one SM sees it: the
/// L1 fields are private per-SM structures, while the LLC/DRAM fields
/// describe the chip-level shared structures (a single SM simulation models
/// them without cross-SM contention; [`crate::simulate_gpu`] shares them).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SmConfig {
    /// Core clock, in MHz (1137 MHz).
    pub core_clock_mhz: f64,
    /// Maximum resident warps per SM (64).
    pub max_warps: usize,
    /// Warps holding register-file-cache space concurrently (8).
    pub active_warps: usize,
    /// Instructions the SM can issue per cycle.
    pub issue_width: usize,
    /// Number of operand-collector units.
    pub operand_collectors: usize,
    /// Register-file capacity per SM, in bytes (256 KB baseline).
    pub regfile_bytes: u64,
    /// Register-file-cache capacity per SM, in bytes (16 KB).
    pub regfile_cache_bytes: u64,
    /// Shared-memory capacity per SM, in bytes (64 KB).
    pub shared_mem_bytes: u64,
    /// Functional-unit latencies.
    pub exec: ExecLatencies,
    /// Memory-hierarchy parameters.
    pub memory: MemoryConfig,
    /// Register-file timing parameters.
    pub regfile: RegFileTiming,
    /// Safety cap on simulated cycles.
    pub max_cycles: Cycle,
}

impl Default for SmConfig {
    fn default() -> Self {
        SmConfig {
            core_clock_mhz: 1137.0,
            max_warps: 64,
            active_warps: 8,
            issue_width: 2,
            operand_collectors: 16,
            regfile_bytes: 256 * 1024,
            regfile_cache_bytes: 16 * 1024,
            shared_mem_bytes: 64 * 1024,
            exec: ExecLatencies::default(),
            memory: MemoryConfig::default(),
            regfile: RegFileTiming::default(),
            max_cycles: 50_000_000,
        }
    }
}

impl SmConfig {
    /// Returns a configuration whose main register file is `factor` times
    /// larger than the baseline (capacity only; latency is set separately
    /// through [`RegFileTiming::with_latency_factor`]).
    #[must_use]
    pub fn with_regfile_capacity_factor(mut self, factor: f64) -> Self {
        self.regfile_bytes = (256.0 * 1024.0 * factor) as u64;
        self
    }

    /// Returns a configuration with the given main-register-file latency
    /// factor.
    #[must_use]
    pub fn with_mrf_latency_factor(mut self, factor: f64) -> Self {
        self.regfile = self.regfile.with_latency_factor(factor);
        self
    }

    /// Returns a configuration with the given number of active warps.
    #[must_use]
    pub fn with_active_warps(mut self, warps: usize) -> Self {
        self.active_warps = warps;
        self
    }

    /// Maximum number of warps of a kernel that can be resident
    /// simultaneously, limited by the register file capacity (the occupancy
    /// calculation behind Table 1 and Figure 3).
    #[must_use]
    pub fn resident_warps(&self, regs_per_thread: u16) -> usize {
        let bytes_per_warp = regs_per_thread as u64 * 32 * 4;
        if bytes_per_warp == 0 {
            return self.max_warps;
        }
        let by_regfile = (self.regfile_bytes / bytes_per_warp) as usize;
        by_regfile.min(self.max_warps).max(1)
    }
}

/// Bandwidth/queue model of the shared L2 cache.
///
/// The L2 is address-interleaved over `slices`; each slice serves one
/// request per `service_cycles` of occupancy, so requests from different SMs
/// (and overlapping requests from one SM) that map to the same slice queue
/// behind each other. This is the chip-level contention the single-SM
/// simulation deliberately omits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct L2Config {
    /// Number of address-interleaved L2 slices (banks).
    pub slices: usize,
    /// Tag + data occupancy of a slice per request, in core cycles.
    pub service_cycles: Cycle,
}

impl Default for L2Config {
    fn default() -> Self {
        // 32 slices × one request per 2 cycles ≈ 16 requests/cycle of
        // aggregate tag bandwidth, a Maxwell-like figure.
        L2Config {
            slices: 32,
            service_cycles: 2,
        }
    }
}

/// Whole-GPU configuration: `sm_count` identical SMs over a shared L2 and
/// DRAM.
///
/// The shared L2's capacity/latency and the DRAM channel organization come
/// from `sm.memory` (Table 3 describes them once, chip-wide); `l2` adds the
/// contention model that only matters when several SMs compete.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GpuConfig {
    /// Number of streaming multiprocessors (Table 3's GPU has 16).
    pub sm_count: usize,
    /// The per-SM configuration, replicated across all SMs.
    pub sm: SmConfig,
    /// Shared-L2 bandwidth/queue parameters.
    pub l2: L2Config,
    /// SM↔L2 network parameters. The default `Ideal` topology is
    /// bit-identical to a direct slice access.
    pub interconnect: InterconnectConfig,
}

impl Default for GpuConfig {
    fn default() -> Self {
        GpuConfig {
            sm_count: 16,
            sm: SmConfig::default(),
            l2: L2Config::default(),
            interconnect: InterconnectConfig::default(),
        }
    }
}

impl GpuConfig {
    /// A GPU of `sm_count` default SMs.
    #[must_use]
    pub fn with_sm_count(sm_count: usize) -> Self {
        GpuConfig {
            sm_count: sm_count.max(1),
            ..GpuConfig::default()
        }
    }

    /// Replaces the per-SM configuration.
    #[must_use]
    pub fn with_sm(mut self, sm: SmConfig) -> Self {
        self.sm = sm;
        self
    }

    /// Replaces the SM↔L2 network configuration.
    #[must_use]
    pub fn with_interconnect(mut self, interconnect: InterconnectConfig) -> Self {
        self.interconnect = interconnect;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_table3() {
        let c = SmConfig::default();
        assert_eq!(c.max_warps, 64);
        assert_eq!(c.active_warps, 8);
        assert_eq!(c.regfile_bytes, 256 * 1024);
        assert_eq!(c.regfile_cache_bytes, 16 * 1024);
        assert_eq!(c.memory.l1d_bytes, 16 * 1024);
        assert_eq!(c.memory.llc_bytes, 2 * 1024 * 1024);
        assert_eq!(c.memory.dram_channels, 8);
        assert!((c.core_clock_mhz - 1137.0).abs() < 1e-9);
    }

    #[test]
    fn occupancy_is_limited_by_register_demand() {
        let c = SmConfig::default();
        // 32 registers/thread -> 4 KB per warp -> 64 warps fit in 256 KB.
        assert_eq!(c.resident_warps(32), 64);
        // 64 registers/thread -> 8 KB per warp -> only 32 warps fit.
        assert_eq!(c.resident_warps(64), 32);
        // 255 registers/thread -> 8 warps.
        assert_eq!(c.resident_warps(255), 8);
        // An 8x register file removes the limit.
        let big = c.with_regfile_capacity_factor(8.0);
        assert_eq!(big.resident_warps(64), 64);
    }

    #[test]
    fn latency_factor_scales_mrf_latency() {
        let t = RegFileTiming::default();
        assert_eq!(t.mrf_latency(), 2);
        assert_eq!(t.with_latency_factor(5.3).mrf_latency(), 11);
        assert_eq!(t.with_latency_factor(6.3).mrf_latency(), 13);
        assert_eq!(t.with_latency_factor(0.1).mrf_latency(), 1);
    }

    #[test]
    fn builder_helpers() {
        let c = SmConfig::default()
            .with_mrf_latency_factor(4.0)
            .with_active_warps(16);
        assert_eq!(c.regfile.mrf_latency(), 8);
        assert_eq!(c.active_warps, 16);
    }

    #[test]
    fn gpu_config_defaults_and_builders() {
        let g = GpuConfig::default();
        assert_eq!(g.sm_count, 16);
        assert_eq!(g.l2.slices, 32);
        let g4 = GpuConfig::with_sm_count(4).with_sm(SmConfig::default().with_active_warps(4));
        assert_eq!(g4.sm_count, 4);
        assert_eq!(g4.sm.active_warps, 4);
        assert_eq!(GpuConfig::with_sm_count(0).sm_count, 1);
    }
}
