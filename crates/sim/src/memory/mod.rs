//! Memory subsystem: caches, DRAM, address generation, and the combined
//! hierarchy.
//!
//! Module map:
//!
//! * [`cache`] — a set-associative, LRU, line-granular cache model used for
//!   both the per-SM L1D and the shared L2;
//! * [`dram`] — the GDDR5-like channel/bank model with open-row state,
//!   FR-FCFS-approximating service times, and bus-occupancy bandwidth
//!   limits;
//! * [`address`] — synthetic per-warp address generation from a workload's
//!   [`MemoryBehavior`] profile (footprint, reuse, stride), with sharded
//!   construction for multi-SM launches;
//! * [`hierarchy`] — the composed hierarchy one SM talks to: private L1 and
//!   MSHRs over either a private L2/DRAM (single-SM mode) or a port onto
//!   the chip-shared [`SharedMemory`] (multi-SM mode with slice-queue L2
//!   contention).

pub mod address;
pub mod cache;
pub mod dram;
pub mod hierarchy;

pub use address::{AddressGenerator, MemoryBehavior};
pub use cache::{Cache, CacheOutcome, CacheStats};
pub use dram::{Dram, DramStats};
pub use hierarchy::{MemoryHierarchy, MemoryStats, SharedMemory};
