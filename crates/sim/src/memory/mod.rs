//! Memory subsystem: caches, DRAM, address generation, and the combined
//! hierarchy.

pub mod address;
pub mod cache;
pub mod dram;
pub mod hierarchy;

pub use address::{AddressGenerator, MemoryBehavior};
pub use cache::{Cache, CacheOutcome, CacheStats};
pub use dram::{Dram, DramStats};
pub use hierarchy::{MemoryHierarchy, MemoryStats};
