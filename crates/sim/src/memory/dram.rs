//! GDDR5-like DRAM channel model with FR-FCFS scheduling effects.
//!
//! Each channel owns a set of banks with open-row state. A request's service
//! time depends on whether it hits the open row (CAS only) or needs a
//! precharge + activate + CAS sequence, and the channel's data bus serialises
//! bursts, which is what creates bandwidth saturation under load. True
//! FR-FCFS reordering is approximated: because row hits are served with a
//! much shorter occupancy, a hit-heavy stream achieves the higher bandwidth
//! an FR-FCFS scheduler would extract, while a random stream degenerates to
//! row-miss timing.

use serde::{Deserialize, Serialize};

use crate::config::MemoryConfig;
use crate::types::Cycle;

/// Cumulative DRAM statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct DramStats {
    /// Requests that hit an open row.
    pub row_hits: u64,
    /// Requests that required activating a new row.
    pub row_misses: u64,
    /// Total requests serviced.
    pub requests: u64,
    /// Cycles requests spent queued behind busy banks or channel buses —
    /// the direct measure of DRAM contention (grows superlinearly as more
    /// SMs share the channels).
    pub queue_wait_cycles: u64,
}

impl DramStats {
    /// Row-buffer hit rate in `[0, 1]`.
    #[must_use]
    pub fn row_hit_rate(&self) -> f64 {
        if self.requests == 0 {
            0.0
        } else {
            self.row_hits as f64 / self.requests as f64
        }
    }
}

#[derive(Debug, Clone, Copy, Serialize, Deserialize)]
struct BankState {
    open_row: Option<u64>,
    ready_at: Cycle,
}

/// A multi-channel GDDR5-like memory system.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dram {
    row_bytes: u64,
    channels: usize,
    banks_per_channel: usize,
    row_hit_latency: Cycle,
    row_miss_latency: Cycle,
    burst_cycles: Cycle,
    banks: Vec<BankState>,
    channel_bus_free: Vec<Cycle>,
    stats: DramStats,
}

impl Dram {
    /// Creates a DRAM model from the memory configuration.
    #[must_use]
    pub fn new(config: &MemoryConfig) -> Self {
        let banks = vec![
            BankState {
                open_row: None,
                ready_at: 0,
            };
            config.dram_channels * config.dram_banks_per_channel
        ];
        Dram {
            row_bytes: config.dram_row_bytes,
            channels: config.dram_channels,
            banks_per_channel: config.dram_banks_per_channel,
            row_hit_latency: config.dram_row_hit_latency,
            row_miss_latency: config.dram_row_miss_latency,
            burst_cycles: config.dram_burst_cycles,
            banks,
            channel_bus_free: vec![0; config.dram_channels],
            stats: DramStats::default(),
        }
    }

    /// Issues a request for `address` at `now`; returns the completion cycle.
    pub fn access(&mut self, address: u64, now: Cycle) -> Cycle {
        self.stats.requests += 1;
        let channel = ((address / self.row_bytes) % self.channels as u64) as usize;
        let row = address / (self.row_bytes * self.channels as u64 * self.banks_per_channel as u64);
        // XOR-permute the bank index with low row bits so that streams from
        // different address regions spread over different banks instead of
        // colliding, as real GDDR5 address hashing does.
        let bank_in_channel = (((address / (self.row_bytes * self.channels as u64)) ^ row)
            % self.banks_per_channel as u64) as usize;
        let bank_index = channel * self.banks_per_channel + bank_in_channel;

        let bank = &mut self.banks[bank_index];
        let row_hit = bank.open_row == Some(row);
        let core_latency = if row_hit {
            self.stats.row_hits += 1;
            self.row_hit_latency
        } else {
            self.stats.row_misses += 1;
            self.row_miss_latency
        };
        bank.open_row = Some(row);

        // The bank must be free, then the access takes its core latency, then
        // the channel's data bus is occupied for the burst.
        let start = now.max(bank.ready_at);
        let data_ready = start + core_latency;
        let bus_start = data_ready.max(self.channel_bus_free[channel]);
        self.stats.queue_wait_cycles += (start - now) + (bus_start - data_ready);
        let done = bus_start + self.burst_cycles;
        bank.ready_at = done;
        self.channel_bus_free[channel] = done;
        done
    }

    /// Cumulative statistics.
    #[must_use]
    pub fn stats(&self) -> DramStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dram() -> Dram {
        Dram::new(&MemoryConfig::default())
    }

    #[test]
    fn first_access_is_a_row_miss() {
        let mut d = dram();
        let done = d.access(0, 0);
        let cfg = MemoryConfig::default();
        assert_eq!(done, cfg.dram_row_miss_latency + cfg.dram_burst_cycles);
        assert_eq!(d.stats().row_misses, 1);
    }

    #[test]
    fn same_row_hits_are_faster() {
        let mut d = dram();
        let first = d.access(0, 0);
        let second = d.access(128, first);
        let cfg = MemoryConfig::default();
        assert_eq!(
            second - first,
            cfg.dram_row_hit_latency + cfg.dram_burst_cycles
        );
        assert!(d.stats().row_hit_rate() > 0.4);
    }

    #[test]
    fn different_channels_proceed_in_parallel() {
        let mut d = dram();
        let cfg = MemoryConfig::default();
        let a = d.access(0, 0);
        // Address one row further lands on the next channel.
        let b = d.access(cfg.dram_row_bytes, 0);
        assert_eq!(a, b, "independent channels see identical latency");
    }

    #[test]
    fn bank_conflicts_serialize() {
        let mut d = dram();
        let cfg = MemoryConfig::default();
        // Two different rows on the same channel and bank.
        let row_stride =
            cfg.dram_row_bytes * cfg.dram_channels as u64 * cfg.dram_banks_per_channel as u64;
        let a = d.access(0, 0);
        let b = d.access(row_stride, 0);
        assert!(b > a, "same-bank different-row requests serialise");
        assert_eq!(d.stats().row_misses, 2);
    }

    #[test]
    fn heavy_load_saturates_channel_bus() {
        let mut d = dram();
        // Many requests to the same row: each occupies the bus for the burst.
        let mut last = 0;
        for i in 0..100u64 {
            last = d.access(i * 4, 0);
        }
        let cfg = MemoryConfig::default();
        assert!(
            last >= 100 * cfg.dram_burst_cycles,
            "bus occupancy bounds bandwidth"
        );
        assert_eq!(d.stats().requests, 100);
    }
}
