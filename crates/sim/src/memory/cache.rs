//! Set-associative cache tag array with LRU replacement.

use serde::{Deserialize, Serialize};

/// Result of a cache lookup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CacheOutcome {
    /// The line was present.
    Hit,
    /// The line was absent and has been filled (allocate-on-miss).
    Miss,
}

/// Cumulative statistics of one cache instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct CacheStats {
    /// Number of lookups that hit.
    pub hits: u64,
    /// Number of lookups that missed.
    pub misses: u64,
}

impl CacheStats {
    /// Hit rate in `[0, 1]`; zero if the cache was never accessed.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

/// A simple set-associative tag array with true-LRU replacement.
///
/// Only tags are modelled: the simulator cares about hit/miss timing, not
/// data. Writes allocate like reads (write-allocate); dirty-line write-back
/// traffic is not modelled because the experiments never measure DRAM write
/// bandwidth.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Cache {
    sets: usize,
    ways: usize,
    line_bytes: u64,
    /// tag storage: `sets × ways`, `None` = invalid.
    tags: Vec<Option<u64>>,
    /// LRU counters parallel to `tags` (larger = more recently used).
    lru: Vec<u64>,
    tick: u64,
    stats: CacheStats,
}

impl Cache {
    /// Creates a cache of `capacity_bytes` with `ways` ways and
    /// `line_bytes` lines.
    ///
    /// # Panics
    ///
    /// Panics if the geometry does not divide evenly or is zero-sized.
    #[must_use]
    pub fn new(capacity_bytes: u64, ways: usize, line_bytes: u64) -> Self {
        assert!(capacity_bytes > 0 && ways > 0 && line_bytes > 0);
        let lines = capacity_bytes / line_bytes;
        assert!(
            (lines as usize).is_multiple_of(ways),
            "capacity must divide into sets"
        );
        let sets = lines as usize / ways;
        assert!(sets > 0, "cache must have at least one set");
        Cache {
            sets,
            ways,
            line_bytes,
            tags: vec![None; sets * ways],
            lru: vec![0; sets * ways],
            tick: 0,
            stats: CacheStats::default(),
        }
    }

    /// Number of sets.
    #[must_use]
    pub fn sets(&self) -> usize {
        self.sets
    }

    /// Accesses `address`; returns whether it hit and updates LRU state.
    pub fn access(&mut self, address: u64) -> CacheOutcome {
        self.tick += 1;
        let line = address / self.line_bytes;
        let set = (line % self.sets as u64) as usize;
        let tag = line / self.sets as u64;
        let base = set * self.ways;
        // Hit?
        for way in 0..self.ways {
            if self.tags[base + way] == Some(tag) {
                self.lru[base + way] = self.tick;
                self.stats.hits += 1;
                return CacheOutcome::Hit;
            }
        }
        // Miss: fill the LRU way.
        self.stats.misses += 1;
        let mut victim = base;
        for way in 0..self.ways {
            if self.tags[base + way].is_none() {
                victim = base + way;
                break;
            }
            if self.lru[base + way] < self.lru[victim] {
                victim = base + way;
            }
        }
        self.tags[victim] = Some(tag);
        self.lru[victim] = self.tick;
        CacheOutcome::Miss
    }

    /// Cumulative statistics.
    #[must_use]
    pub fn stats(&self) -> CacheStats {
        self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn repeated_access_hits() {
        let mut c = Cache::new(1024, 4, 128);
        assert_eq!(c.access(0), CacheOutcome::Miss);
        assert_eq!(c.access(64), CacheOutcome::Hit, "same 128-byte line");
        assert_eq!(c.access(0), CacheOutcome::Hit);
        assert!((c.stats().hit_rate() - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn capacity_evictions_follow_lru() {
        // 2 sets x 2 ways of 128-byte lines = 512 bytes.
        let mut c = Cache::new(512, 2, 128);
        // Three lines mapping to the same set (stride = sets*line = 256).
        assert_eq!(c.access(0), CacheOutcome::Miss);
        assert_eq!(c.access(256), CacheOutcome::Miss);
        assert_eq!(c.access(512), CacheOutcome::Miss); // evicts line 0 (LRU)
        assert_eq!(c.access(256), CacheOutcome::Hit);
        assert_eq!(c.access(0), CacheOutcome::Miss, "line 0 was evicted");
    }

    #[test]
    fn distinct_sets_do_not_conflict() {
        let mut c = Cache::new(512, 2, 128);
        assert_eq!(c.access(0), CacheOutcome::Miss);
        assert_eq!(c.access(128), CacheOutcome::Miss);
        assert_eq!(c.access(0), CacheOutcome::Hit);
        assert_eq!(c.access(128), CacheOutcome::Hit);
        assert_eq!(c.sets(), 2);
    }

    #[test]
    #[should_panic(expected = "divide into sets")]
    fn bad_geometry_panics() {
        let _ = Cache::new(384, 4, 128);
    }

    #[test]
    fn empty_cache_stats() {
        let c = Cache::new(1024, 4, 128);
        assert_eq!(c.stats().hit_rate(), 0.0);
    }
}
