//! The full memory hierarchy: per-SM L1 data cache, shared last-level cache,
//! and DRAM, with a simple MSHR-style limit on outstanding requests.

use serde::{Deserialize, Serialize};

use crate::config::MemoryConfig;
use crate::memory::cache::{Cache, CacheOutcome, CacheStats};
use crate::memory::dram::{Dram, DramStats};
use crate::types::Cycle;

/// Aggregated statistics of the memory hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct MemoryStats {
    /// L1 data-cache statistics.
    pub l1d: CacheStats,
    /// Last-level cache statistics.
    pub llc: CacheStats,
    /// DRAM statistics.
    pub dram: DramStats,
    /// Global memory requests issued.
    pub global_requests: u64,
    /// Requests rejected because too many were outstanding (issue stalls).
    pub mshr_stalls: u64,
}

/// The memory hierarchy serving one simulated SM.
#[derive(Debug)]
pub struct MemoryHierarchy {
    config: MemoryConfig,
    l1d: Cache,
    llc: Cache,
    dram: Dram,
    /// Completion times of outstanding requests (bounded by the MSHR count).
    outstanding: Vec<Cycle>,
    stats_global_requests: u64,
    stats_mshr_stalls: u64,
}

impl MemoryHierarchy {
    /// Creates a hierarchy from the configuration.
    #[must_use]
    pub fn new(config: &MemoryConfig) -> Self {
        MemoryHierarchy {
            config: *config,
            l1d: Cache::new(config.l1d_bytes, config.l1d_ways, config.line_bytes),
            llc: Cache::new(config.llc_bytes, config.llc_ways, config.line_bytes),
            dram: Dram::new(config),
            outstanding: Vec::new(),
            stats_global_requests: 0,
            stats_mshr_stalls: 0,
        }
    }

    /// Returns `true` if a new global-memory request can be accepted at
    /// `now` (an MSHR slot is free).
    pub fn can_accept(&mut self, now: Cycle) -> bool {
        self.outstanding.retain(|&done| done > now);
        self.outstanding.len() < self.config.max_outstanding_requests
    }

    /// Issues a global-memory access (load or store) for `address` at `now`
    /// and returns its completion cycle.
    ///
    /// Callers should check [`Self::can_accept`] first; a request issued
    /// while the MSHRs are full is still serviced but records a stall.
    pub fn access_global(&mut self, address: u64, now: Cycle) -> Cycle {
        if !self.can_accept(now) {
            self.stats_mshr_stalls += 1;
        }
        self.stats_global_requests += 1;
        let line_addr = address / self.config.line_bytes * self.config.line_bytes;
        let l1 = self.l1d.access(line_addr);
        let done = match l1 {
            CacheOutcome::Hit => now + self.config.l1_hit_latency,
            CacheOutcome::Miss => {
                let llc = self.llc.access(line_addr);
                match llc {
                    CacheOutcome::Hit => {
                        now + self.config.l1_hit_latency + self.config.llc_hit_latency
                    }
                    CacheOutcome::Miss => {
                        let dram_issue =
                            now + self.config.l1_hit_latency + self.config.llc_hit_latency;
                        self.dram.access(line_addr, dram_issue)
                    }
                }
            }
        };
        self.outstanding.push(done);
        done
    }

    /// Cumulative statistics.
    #[must_use]
    pub fn stats(&self) -> MemoryStats {
        MemoryStats {
            l1d: self.l1d.stats(),
            llc: self.llc.stats(),
            dram: self.dram.stats(),
            global_requests: self.stats_global_requests,
            mshr_stalls: self.stats_mshr_stalls,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hierarchy() -> MemoryHierarchy {
        MemoryHierarchy::new(&MemoryConfig::default())
    }

    #[test]
    fn l1_hit_is_fast() {
        let mut m = hierarchy();
        let cfg = MemoryConfig::default();
        let first = m.access_global(0, 0);
        assert!(first > cfg.l1_hit_latency, "first access misses everywhere");
        let second = m.access_global(0, first);
        assert_eq!(second - first, cfg.l1_hit_latency);
        assert_eq!(m.stats().l1d.hits, 1);
    }

    #[test]
    fn llc_filters_dram_traffic() {
        let mut m = hierarchy();
        // Touch enough distinct lines to overflow the 16 KB L1 (128 lines)
        // but stay well within the 2 MB LLC.
        let lines = 1024u64;
        for i in 0..lines {
            m.access_global(i * 128, 0);
        }
        // Second sweep: misses L1 (capacity) but hits LLC.
        for i in 0..lines {
            m.access_global(i * 128, 1_000_000);
        }
        let stats = m.stats();
        assert!(
            stats.llc.hits >= lines / 2,
            "LLC should absorb the second sweep"
        );
        assert_eq!(stats.global_requests, 2 * lines);
    }

    #[test]
    fn dram_latency_dominates_cold_misses() {
        let mut m = hierarchy();
        let cfg = MemoryConfig::default();
        let done = m.access_global(0, 0);
        assert!(
            done >= cfg.l1_hit_latency + cfg.llc_hit_latency + cfg.dram_row_miss_latency,
            "cold miss must traverse the full hierarchy"
        );
    }

    #[test]
    fn mshr_limit_throttles() {
        let mut m = hierarchy();
        let cfg = MemoryConfig::default();
        // Issue far more concurrent requests than MSHRs at the same cycle.
        for i in 0..(cfg.max_outstanding_requests as u64 * 2) {
            let _ = m.access_global(i * 4096, 0);
        }
        assert!(!m.can_accept(0));
        assert!(m.stats().mshr_stalls > 0);
        // After everything completes the hierarchy accepts requests again.
        assert!(m.can_accept(1_000_000_000));
    }
}
