//! The full memory hierarchy: per-SM L1 data cache, shared last-level cache,
//! and DRAM, with a simple MSHR-style limit on outstanding requests.
//!
//! The hierarchy comes in two shapes behind one type:
//!
//! * **Private** — [`MemoryHierarchy::new`]: the L1, L2, and DRAM all belong
//!   to the one simulated SM. This is the configuration every single-SM
//!   campaign runs and models the L2 with *unlimited* bandwidth (optimistic
//!   when many SMs would really share it).
//! * **Shared** — [`MemoryHierarchy::shared_port`]: the L1 and MSHRs stay
//!   private, but L2 and DRAM live in a [`SharedMemory`] that every SM's
//!   port references. The shared L2 is sliced ([`L2Config`]) and each slice
//!   serves one request per occupancy window, so concurrent request streams
//!   queue against each other — the chip-level contention the multi-SM mode
//!   exists to model.

use std::cell::RefCell;
use std::rc::Rc;

use serde::{Deserialize, Serialize};

use crate::config::{L2Config, MemoryConfig};
use crate::interconnect::{
    build_network, AddressDecoder, Interconnect, InterconnectConfig, InterconnectStats,
};
use crate::memory::cache::{Cache, CacheOutcome, CacheStats};
use crate::memory::dram::{Dram, DramStats};
use crate::types::Cycle;

/// Aggregated statistics of the memory hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct MemoryStats {
    /// L1 data-cache statistics.
    pub l1d: CacheStats,
    /// Last-level cache statistics. For a shared port these are the
    /// GPU-global L2 numbers (every SM port reports the same totals).
    pub llc: CacheStats,
    /// DRAM statistics. GPU-global for a shared port, like `llc`.
    pub dram: DramStats,
    /// Global memory requests issued.
    pub global_requests: u64,
    /// Requests rejected because too many were outstanding (issue stalls).
    pub mshr_stalls: u64,
    /// Cycles requests spent queued behind busy L2 slices (always zero for
    /// a private hierarchy, whose L2 has unlimited bandwidth).
    pub l2_queue_wait_cycles: u64,
    /// Slice-port queue wait of the *least* loaded L2 slice, in cycles
    /// (zero for a private hierarchy). The min/max spread exposes slice
    /// imbalance that the aggregate wait hides.
    pub l2_slice_wait_min: u64,
    /// Slice-port queue wait of the *most* loaded L2 slice, in cycles.
    pub l2_slice_wait_max: u64,
    /// SM↔L2 interconnect statistics (all zero for a private hierarchy and
    /// for the default `Ideal` topology's latency counters).
    pub noc: InterconnectStats,
}

/// The chip-level memory structures shared by every SM: the sliced L2 and
/// the DRAM channels.
///
/// Single-threaded by design — a multi-SM simulation interleaves its SMs on
/// one thread (the sweep engine parallelizes across campaign *points*, not
/// inside one), so ports hold this behind `Rc<RefCell<..>>`.
#[derive(Debug)]
pub struct SharedMemory {
    llc: Cache,
    dram: Dram,
    llc_hit_latency: Cycle,
    /// Maps line addresses to L2 slices (replaces the historical implicit
    /// modulo; the default `Line` interleave reproduces it bit for bit).
    decoder: AddressDecoder,
    /// Transport from SM to slice port. `Ideal` (the default) is the
    /// identity on arrival time, so slice-port arbitration below is exactly
    /// the pre-interconnect contention model.
    network: Box<dyn Interconnect>,
    /// Next-free cycle per L2 slice.
    slice_free: Vec<Cycle>,
    /// Cycles spent queued at each slice's port (per-slice imbalance stat).
    slice_wait_cycles: Vec<u64>,
    service_cycles: Cycle,
    l2_queue_wait_cycles: u64,
}

impl SharedMemory {
    /// Creates the shared L2 + DRAM from the chip-wide memory configuration,
    /// with the default (`Ideal`) interconnect.
    #[must_use]
    pub fn new(config: &MemoryConfig, l2: &L2Config) -> Self {
        SharedMemory::with_interconnect(config, l2, &InterconnectConfig::default(), 1)
    }

    /// Creates the shared L2 + DRAM with an explicit SM↔L2 network joining
    /// `sm_count` SMs to the slices.
    #[must_use]
    pub fn with_interconnect(
        config: &MemoryConfig,
        l2: &L2Config,
        interconnect: &InterconnectConfig,
        sm_count: usize,
    ) -> Self {
        let slices = l2.slices.max(1);
        SharedMemory {
            llc: Cache::new(config.llc_bytes, config.llc_ways, config.line_bytes),
            dram: Dram::new(config),
            llc_hit_latency: config.llc_hit_latency,
            decoder: AddressDecoder::new(config.line_bytes, slices, interconnect.interleave),
            network: build_network(interconnect, sm_count, slices, config.line_bytes),
            slice_free: vec![0; slices],
            slice_wait_cycles: vec![0; slices],
            service_cycles: l2.service_cycles,
            l2_queue_wait_cycles: 0,
        }
    }

    /// Services an L1 miss from SM `src_sm` leaving its L1 at `arrive`;
    /// returns the completion cycle. The request first crosses the network
    /// to its slice's input port, then queues for the slice's occupancy
    /// window exactly as before.
    fn access(&mut self, src_sm: usize, line_addr: u64, arrive: Cycle) -> Cycle {
        let slice = self.decoder.slice_of(line_addr);
        let port_arrive = self.network.route(src_sm, slice, arrive);
        let start = port_arrive.max(self.slice_free[slice]);
        self.l2_queue_wait_cycles += start - port_arrive;
        self.slice_wait_cycles[slice] += start - port_arrive;
        self.slice_free[slice] = start + self.service_cycles;
        let tag_done = start + self.llc_hit_latency;
        match self.llc.access(line_addr) {
            CacheOutcome::Hit => tag_done,
            CacheOutcome::Miss => self.dram.access(line_addr, tag_done),
        }
    }

    /// GPU-global L2 statistics.
    #[must_use]
    pub fn llc_stats(&self) -> CacheStats {
        self.llc.stats()
    }

    /// GPU-global DRAM statistics.
    #[must_use]
    pub fn dram_stats(&self) -> DramStats {
        self.dram.stats()
    }

    /// Cycles requests spent queued behind busy L2 slices.
    #[must_use]
    pub fn l2_queue_wait_cycles(&self) -> u64 {
        self.l2_queue_wait_cycles
    }

    /// Queue-wait cycles of the least and most loaded L2 slices.
    #[must_use]
    pub fn slice_wait_bounds(&self) -> (u64, u64) {
        let min = self.slice_wait_cycles.iter().copied().min().unwrap_or(0);
        let max = self.slice_wait_cycles.iter().copied().max().unwrap_or(0);
        (min, max)
    }

    /// GPU-global SM↔L2 network statistics.
    #[must_use]
    pub fn noc_stats(&self) -> InterconnectStats {
        self.network.stats()
    }
}

/// Which L2/DRAM a hierarchy drains into.
///
/// The private levels are boxed so the enum stays pointer-sized either way
/// (the cache tag arrays are large).
#[derive(Debug)]
enum Backend {
    /// SM-private L2 + DRAM with unlimited L2 bandwidth (the validated
    /// single-SM configuration).
    Private(Box<PrivateLevels>),
    /// A port onto the chip-shared structures.
    Shared(Rc<RefCell<SharedMemory>>),
}

/// The L2 and DRAM owned outright by a single-SM hierarchy.
#[derive(Debug)]
struct PrivateLevels {
    llc: Cache,
    dram: Dram,
}

/// The memory hierarchy serving one simulated SM.
#[derive(Debug)]
pub struct MemoryHierarchy {
    config: MemoryConfig,
    l1d: Cache,
    backend: Backend,
    /// Which SM this port belongs to — the network source for shared
    /// backends (always 0 for a private hierarchy).
    sm_index: usize,
    /// Completion times of outstanding requests (bounded by the MSHR count).
    outstanding: Vec<Cycle>,
    stats_global_requests: u64,
    stats_mshr_stalls: u64,
}

impl MemoryHierarchy {
    /// Creates a fully private hierarchy from the configuration.
    #[must_use]
    pub fn new(config: &MemoryConfig) -> Self {
        MemoryHierarchy {
            config: *config,
            l1d: Cache::new(config.l1d_bytes, config.l1d_ways, config.line_bytes),
            backend: Backend::Private(Box::new(PrivateLevels {
                llc: Cache::new(config.llc_bytes, config.llc_ways, config.line_bytes),
                dram: Dram::new(config),
            })),
            sm_index: 0,
            outstanding: Vec::with_capacity(config.max_outstanding_requests),
            stats_global_requests: 0,
            stats_mshr_stalls: 0,
        }
    }

    /// Creates SM `sm_index`'s port onto a shared L2/DRAM: a private L1 and
    /// MSHRs in front of `shared`. The index is the port's source address in
    /// the SM↔L2 network.
    #[must_use]
    pub fn shared_port(
        config: &MemoryConfig,
        shared: Rc<RefCell<SharedMemory>>,
        sm_index: usize,
    ) -> Self {
        MemoryHierarchy {
            config: *config,
            l1d: Cache::new(config.l1d_bytes, config.l1d_ways, config.line_bytes),
            backend: Backend::Shared(shared),
            sm_index,
            outstanding: Vec::with_capacity(config.max_outstanding_requests),
            stats_global_requests: 0,
            stats_mshr_stalls: 0,
        }
    }

    /// Returns `true` if a new global-memory request can be accepted at
    /// `now` (an MSHR slot is free).
    pub fn can_accept(&mut self, now: Cycle) -> bool {
        self.outstanding.retain(|&done| done > now);
        self.outstanding.len() < self.config.max_outstanding_requests
    }

    /// Issues a global-memory access (load or store) for `address` at `now`
    /// and returns its completion cycle.
    ///
    /// Callers should check [`Self::can_accept`] first; a request issued
    /// while the MSHRs are full is still serviced but records a stall.
    pub fn access_global(&mut self, address: u64, now: Cycle) -> Cycle {
        if !self.can_accept(now) {
            self.stats_mshr_stalls += 1;
        }
        self.stats_global_requests += 1;
        let line_addr = address / self.config.line_bytes * self.config.line_bytes;
        let l1 = self.l1d.access(line_addr);
        let done = match l1 {
            CacheOutcome::Hit => now + self.config.l1_hit_latency,
            CacheOutcome::Miss => {
                let l2_arrive = now + self.config.l1_hit_latency;
                match &mut self.backend {
                    Backend::Private(levels) => match levels.llc.access(line_addr) {
                        CacheOutcome::Hit => l2_arrive + self.config.llc_hit_latency,
                        CacheOutcome::Miss => levels
                            .dram
                            .access(line_addr, l2_arrive + self.config.llc_hit_latency),
                    },
                    Backend::Shared(shared) => {
                        // Network transport + slice queueing fold into the
                        // completion cycle returned here, which becomes the
                        // issuing warp's wakeup — so the fast engine's
                        // skip-ahead horizon already accounts for in-flight
                        // network occupancy (see `interconnect` module docs).
                        shared
                            .borrow_mut()
                            .access(self.sm_index, line_addr, l2_arrive)
                    }
                }
            }
        };
        self.outstanding.push(done);
        done
    }

    /// Cumulative statistics. For a shared port the `llc`/`dram` fields are
    /// the GPU-global totals of the shared structures.
    #[must_use]
    pub fn stats(&self) -> MemoryStats {
        let (llc, dram, l2_queue_wait_cycles, (slice_min, slice_max), noc) = match &self.backend {
            Backend::Private(levels) => (
                levels.llc.stats(),
                levels.dram.stats(),
                0,
                (0, 0),
                InterconnectStats::default(),
            ),
            Backend::Shared(shared) => {
                let shared = shared.borrow();
                (
                    shared.llc_stats(),
                    shared.dram_stats(),
                    shared.l2_queue_wait_cycles(),
                    shared.slice_wait_bounds(),
                    shared.noc_stats(),
                )
            }
        };
        MemoryStats {
            l1d: self.l1d.stats(),
            llc,
            dram,
            global_requests: self.stats_global_requests,
            mshr_stalls: self.stats_mshr_stalls,
            l2_queue_wait_cycles,
            l2_slice_wait_min: slice_min,
            l2_slice_wait_max: slice_max,
            noc,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn hierarchy() -> MemoryHierarchy {
        MemoryHierarchy::new(&MemoryConfig::default())
    }

    #[test]
    fn l1_hit_is_fast() {
        let mut m = hierarchy();
        let cfg = MemoryConfig::default();
        let first = m.access_global(0, 0);
        assert!(first > cfg.l1_hit_latency, "first access misses everywhere");
        let second = m.access_global(0, first);
        assert_eq!(second - first, cfg.l1_hit_latency);
        assert_eq!(m.stats().l1d.hits, 1);
    }

    #[test]
    fn llc_filters_dram_traffic() {
        let mut m = hierarchy();
        // Touch enough distinct lines to overflow the 16 KB L1 (128 lines)
        // but stay well within the 2 MB LLC.
        let lines = 1024u64;
        for i in 0..lines {
            m.access_global(i * 128, 0);
        }
        // Second sweep: misses L1 (capacity) but hits LLC.
        for i in 0..lines {
            m.access_global(i * 128, 1_000_000);
        }
        let stats = m.stats();
        assert!(
            stats.llc.hits >= lines / 2,
            "LLC should absorb the second sweep"
        );
        assert_eq!(stats.global_requests, 2 * lines);
    }

    #[test]
    fn dram_latency_dominates_cold_misses() {
        let mut m = hierarchy();
        let cfg = MemoryConfig::default();
        let done = m.access_global(0, 0);
        assert!(
            done >= cfg.l1_hit_latency + cfg.llc_hit_latency + cfg.dram_row_miss_latency,
            "cold miss must traverse the full hierarchy"
        );
    }

    #[test]
    fn mshr_limit_throttles() {
        let mut m = hierarchy();
        let cfg = MemoryConfig::default();
        // Issue far more concurrent requests than MSHRs at the same cycle.
        for i in 0..(cfg.max_outstanding_requests as u64 * 2) {
            let _ = m.access_global(i * 4096, 0);
        }
        assert!(!m.can_accept(0));
        assert!(m.stats().mshr_stalls > 0);
        // After everything completes the hierarchy accepts requests again.
        assert!(m.can_accept(1_000_000_000));
    }

    #[test]
    fn shared_port_uncontended_matches_private_timing() {
        // One SM on a shared backend with zero slice occupancy sees the
        // private hierarchy's exact latencies (no queueing, same caches).
        let cfg = MemoryConfig::default();
        let l2 = L2Config {
            slices: 32,
            service_cycles: 0,
        };
        let shared = Rc::new(RefCell::new(SharedMemory::new(&cfg, &l2)));
        let mut port = MemoryHierarchy::shared_port(&cfg, shared, 0);
        let mut private = hierarchy();
        for i in 0..256u64 {
            let addr = i * 256;
            assert_eq!(
                port.access_global(addr, i * 10),
                private.access_global(addr, i * 10)
            );
        }
    }

    #[test]
    fn shared_l2_slices_queue_concurrent_requests() {
        let cfg = MemoryConfig::default();
        let l2 = L2Config {
            slices: 1,
            service_cycles: 4,
        };
        let shared = Rc::new(RefCell::new(SharedMemory::new(&cfg, &l2)));
        let mut a = MemoryHierarchy::shared_port(&cfg, Rc::clone(&shared), 0);
        let mut b = MemoryHierarchy::shared_port(&cfg, Rc::clone(&shared), 1);
        // Two SMs miss their L1s at the same cycle; the single slice
        // serialises them.
        let done_a = a.access_global(0, 0);
        let done_b = b.access_global(128, 0);
        assert!(done_b > done_a || done_a > done_b);
        assert!(shared.borrow().l2_queue_wait_cycles() > 0);
        // Both ports report the same GPU-global shared stats.
        assert_eq!(a.stats().llc, b.stats().llc);
        assert_eq!(a.stats().dram, b.stats().dram);
    }

    #[test]
    fn shared_l2_is_shared_content() {
        // SM A warms a line; SM B's first access to it hits the L2 even
        // though B's L1 is cold — cross-SM sharing through the L2.
        let cfg = MemoryConfig::default();
        let shared = Rc::new(RefCell::new(SharedMemory::new(&cfg, &L2Config::default())));
        let mut a = MemoryHierarchy::shared_port(&cfg, Rc::clone(&shared), 0);
        let mut b = MemoryHierarchy::shared_port(&cfg, Rc::clone(&shared), 1);
        let _ = a.access_global(4096, 0);
        let warm = b.access_global(4096, 100_000);
        assert!(
            warm - 100_000 < cfg.l1_hit_latency + cfg.llc_hit_latency + cfg.dram_row_hit_latency,
            "B's access must be served by the shared L2, not DRAM"
        );
        assert_eq!(shared.borrow().llc_stats().hits, 1);
    }

    use crate::interconnect::{InterconnectConfig, Topology};

    /// `n` ports onto one shared memory, SM-indexed 0..n.
    fn ports(
        cfg: &MemoryConfig,
        shared: &Rc<RefCell<SharedMemory>>,
        n: usize,
    ) -> Vec<MemoryHierarchy> {
        (0..n)
            .map(|sm| MemoryHierarchy::shared_port(cfg, Rc::clone(shared), sm))
            .collect()
    }

    #[test]
    fn ideal_with_interconnect_matches_plain_shared_memory() {
        // `with_interconnect` + default config must be bit-identical to the
        // historical `new` constructor, access for access.
        let cfg = MemoryConfig::default();
        let l2 = L2Config::default();
        let plain = Rc::new(RefCell::new(SharedMemory::new(&cfg, &l2)));
        let icn = Rc::new(RefCell::new(SharedMemory::with_interconnect(
            &cfg,
            &l2,
            &InterconnectConfig::default(),
            16,
        )));
        let mut a = ports(&cfg, &plain, 4);
        let mut b = ports(&cfg, &icn, 4);
        for step in 0..2048u64 {
            let sm = (step % 4) as usize;
            let addr = (step * 7919) % (1 << 20);
            let at = step / 4;
            assert_eq!(
                a[sm].access_global(addr, at),
                b[sm].access_global(addr, at),
                "step {step}"
            );
        }
        assert_eq!(
            plain.borrow().l2_queue_wait_cycles(),
            icn.borrow().l2_queue_wait_cycles()
        );
    }

    #[test]
    fn all_sms_hammering_one_slice_serialize_in_sm_order() {
        // Every SM misses to the same line at the same cycle: the single
        // slice's occupancy window serialises them in port-call (SM-index)
        // order, with strictly increasing completions past the first.
        let cfg = MemoryConfig::default();
        let l2 = L2Config {
            slices: 8,
            service_cycles: 4,
        };
        let shared = Rc::new(RefCell::new(SharedMemory::new(&cfg, &l2)));
        // Warm the shared L2 through throwaway ports so the hammering
        // accesses below are pure LLC hits (DRAM bank interleaving would
        // otherwise scramble completion order).
        for (sm, port) in ports(&cfg, &shared, 8).iter_mut().enumerate() {
            port.access_global(sm as u64 * 8 * 128, 0);
        }
        let mut sms = ports(&cfg, &shared, 8);
        // Distinct addresses in the same slice (slice 0 of 8, 128 B lines):
        // line indices 0, 8, 16, ... so L1s don't share lines.
        let dones: Vec<Cycle> = sms
            .iter_mut()
            .enumerate()
            .map(|(sm, port)| port.access_global(sm as u64 * 8 * 128, 1_000_000))
            .collect();
        for pair in dones.windows(2) {
            assert!(pair[1] > pair[0], "later SMs queue behind earlier ones");
        }
        let (min, max) = shared.borrow().slice_wait_bounds();
        assert_eq!(min, 0, "seven slices stayed idle");
        assert_eq!(
            max,
            shared.borrow().l2_queue_wait_cycles(),
            "all queueing happened on the hammered slice"
        );
    }

    #[test]
    fn crossbar_queue_full_backpressures_the_slice_port() {
        // A depth-2 crossbar output port: burst 6 same-slice misses at one
        // cycle and the later ones must wait for queue slots, not just the
        // wire — strictly more total latency than an unbounded queue.
        let cfg = MemoryConfig::default();
        let l2 = L2Config {
            slices: 4,
            service_cycles: 0,
        };
        let run = |depth: usize| {
            let icn = InterconnectConfig {
                topology: Topology::Crossbar,
                queue_depth: depth,
                ..InterconnectConfig::default()
            };
            let shared = Rc::new(RefCell::new(SharedMemory::with_interconnect(
                &cfg, &l2, &icn, 6,
            )));
            let mut sms = ports(&cfg, &shared, 6);
            let last = sms
                .iter_mut()
                .enumerate()
                .map(|(sm, port)| port.access_global(sm as u64 * 4 * 128, 0))
                .max()
                .unwrap();
            let noc = shared.borrow().noc_stats();
            (last, noc)
        };
        let (done_deep, noc_deep) = run(64);
        let (done_shallow, noc_shallow) = run(2);
        assert_eq!(
            done_deep, done_shallow,
            "completion order is FIFO either way; backpressure shifts wait earlier"
        );
        assert_eq!(noc_shallow.messages, 6);
        assert!(
            noc_shallow.max_link_occupancy <= 2,
            "population stays bounded"
        );
        assert!(noc_deep.max_link_occupancy > 2);
        assert!(noc_shallow.total_queue_wait > 0);
    }

    #[test]
    fn shared_access_order_is_deterministic() {
        // Same schedule, same configuration → byte-identical stats, across
        // separately constructed shared memories (mesh, the most stateful
        // topology).
        let cfg = MemoryConfig::default();
        let l2 = L2Config::default();
        let icn = InterconnectConfig {
            topology: Topology::Mesh2D,
            ..InterconnectConfig::default()
        };
        let run = || {
            let shared = Rc::new(RefCell::new(SharedMemory::with_interconnect(
                &cfg, &l2, &icn, 16,
            )));
            let mut sms = ports(&cfg, &shared, 16);
            let mut dones = Vec::new();
            for cycle in 0..64u64 {
                for (sm, port) in sms.iter_mut().enumerate() {
                    let addr = ((sm as u64 * 131 + cycle * 17) % 4096) * 128;
                    dones.push(port.access_global(addr, cycle * 8));
                }
            }
            let (noc, wait) = {
                let s = shared.borrow();
                (s.noc_stats(), s.l2_queue_wait_cycles())
            };
            (dones, noc, wait)
        };
        assert_eq!(run(), run());
    }
}
