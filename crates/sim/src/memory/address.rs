//! Synthetic memory-address generation.
//!
//! The synthetic kernels carry no real data, so the simulator generates
//! addresses for their loads and stores from a per-workload
//! [`MemoryBehavior`] description. The goal is not to reproduce any
//! particular benchmark's address trace but to expose the simulator's cache
//! hierarchy and DRAM to the same qualitative pressure the real workloads
//! create: a configurable footprint, a configurable amount of spatial
//! streaming, and a configurable probability of reusing recently touched
//! lines.

use serde::{Deserialize, Serialize};

use crate::types::WarpId;

/// Describes how a kernel touches memory.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemoryBehavior {
    /// Total global-memory footprint touched by the kernel, in bytes.
    pub footprint_bytes: u64,
    /// Probability in `[0, 1]` that an access reuses the warp's previous
    /// cache line instead of streaming onward (temporal/spatial locality).
    pub reuse_probability: f64,
    /// Stride, in bytes, between consecutive streaming accesses of one warp
    /// (128 = perfectly coalesced warp accesses marching through memory).
    pub stride_bytes: u64,
}

impl MemoryBehavior {
    /// A streaming workload with a large footprint and little reuse
    /// (memory-bandwidth bound).
    #[must_use]
    pub const fn streaming() -> Self {
        MemoryBehavior {
            footprint_bytes: 64 * 1024 * 1024,
            reuse_probability: 0.10,
            stride_bytes: 128,
        }
    }

    /// A cache-friendly workload whose working set fits in the L1/L2 caches.
    #[must_use]
    pub const fn cache_resident() -> Self {
        MemoryBehavior {
            footprint_bytes: 256 * 1024,
            reuse_probability: 0.75,
            stride_bytes: 128,
        }
    }

    /// An irregular workload: large footprint, scattered accesses.
    #[must_use]
    pub const fn irregular() -> Self {
        MemoryBehavior {
            footprint_bytes: 128 * 1024 * 1024,
            reuse_probability: 0.05,
            stride_bytes: 128 * 37,
        }
    }
}

impl Default for MemoryBehavior {
    fn default() -> Self {
        MemoryBehavior::streaming()
    }
}

/// Per-warp address generator.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AddressGenerator {
    behavior: MemoryBehavior,
    /// Next streaming offset per warp.
    cursor: Vec<u64>,
    /// Last address issued per warp.
    last: Vec<u64>,
    /// Simple xorshift state for reuse decisions.
    rng: u64,
}

impl AddressGenerator {
    /// Creates a generator for `warps` resident warps.
    #[must_use]
    pub fn new(behavior: MemoryBehavior, warps: usize, seed: u64) -> Self {
        AddressGenerator::sharded(behavior, warps, seed, 0, warps)
    }

    /// Creates a generator for one SM's shard of a multi-SM launch: the SM
    /// holds `warps` local warps whose global indices start at `first_warp`
    /// out of `total_warps` across the GPU.
    ///
    /// Regions are carved from the footprint by *global* warp index, so the
    /// SMs stream through disjoint slices of the same footprint (the common
    /// partitioned-grid pattern) while still colliding in the shared L2/DRAM
    /// through reuse and row/channel interleaving. With `first_warp == 0`
    /// and `total_warps == warps` this is exactly [`AddressGenerator::new`].
    #[must_use]
    pub fn sharded(
        behavior: MemoryBehavior,
        warps: usize,
        seed: u64,
        first_warp: usize,
        total_warps: usize,
    ) -> Self {
        // Spread warps evenly across the footprint so they stream through
        // disjoint regions, the common GPU access pattern.
        let footprint = behavior.footprint_bytes.max(128);
        let region = footprint / total_warps.max(1) as u64;
        let start = |w: u64| (first_warp as u64 + w) * region;
        let cursor = (0..warps as u64).map(start).collect();
        let last = (0..warps as u64).map(start).collect();
        AddressGenerator {
            behavior,
            cursor,
            last,
            rng: seed | 1,
        }
    }

    fn next_rand(&mut self) -> u64 {
        let mut x = self.rng;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Produces the next global-memory address for `warp`.
    ///
    /// # Panics
    ///
    /// Panics if `warp` is out of range.
    pub fn next_address(&mut self, warp: WarpId) -> u64 {
        let idx = warp.index();
        let reuse = (self.next_rand() >> 11) as f64 / (1u64 << 53) as f64;
        if reuse < self.behavior.reuse_probability {
            return self.last[idx];
        }
        let footprint = self.behavior.footprint_bytes.max(128);
        let addr = self.cursor[idx] % footprint;
        self.cursor[idx] = self.cursor[idx].wrapping_add(self.behavior.stride_bytes);
        self.last[idx] = addr;
        addr
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn warps_stream_through_disjoint_regions() {
        let mut gen = AddressGenerator::new(
            MemoryBehavior {
                footprint_bytes: 1024 * 1024,
                reuse_probability: 0.0,
                stride_bytes: 128,
            },
            4,
            7,
        );
        let a0 = gen.next_address(WarpId(0));
        let a1 = gen.next_address(WarpId(1));
        assert_ne!(a0, a1);
        assert_eq!(a1 - a0, 256 * 1024);
    }

    #[test]
    fn streaming_advances_by_stride() {
        let mut gen = AddressGenerator::new(
            MemoryBehavior {
                footprint_bytes: 1024 * 1024,
                reuse_probability: 0.0,
                stride_bytes: 128,
            },
            1,
            7,
        );
        let a = gen.next_address(WarpId(0));
        let b = gen.next_address(WarpId(0));
        assert_eq!(b - a, 128);
    }

    #[test]
    fn full_reuse_repeats_the_same_address() {
        let mut gen = AddressGenerator::new(
            MemoryBehavior {
                footprint_bytes: 1024 * 1024,
                reuse_probability: 1.0,
                stride_bytes: 128,
            },
            1,
            9,
        );
        let a = gen.next_address(WarpId(0));
        let b = gen.next_address(WarpId(0));
        assert_eq!(a, b);
    }

    #[test]
    fn addresses_stay_inside_the_footprint() {
        let behavior = MemoryBehavior {
            footprint_bytes: 4096,
            reuse_probability: 0.2,
            stride_bytes: 128,
        };
        let mut gen = AddressGenerator::new(behavior, 2, 11);
        for _ in 0..1000 {
            assert!(gen.next_address(WarpId(0)) < 4096);
            assert!(gen.next_address(WarpId(1)) < 4096);
        }
    }

    #[test]
    fn sharded_regions_follow_global_warp_indices() {
        let behavior = MemoryBehavior {
            footprint_bytes: 1024 * 1024,
            reuse_probability: 0.0,
            stride_bytes: 128,
        };
        // 4 warps over 2 SMs: SM1's first warp starts where warp 2 of a
        // 4-warp single-SM generator would.
        let mut whole = AddressGenerator::new(behavior, 4, 7);
        let mut sm1 = AddressGenerator::sharded(behavior, 2, 7, 2, 4);
        let _ = whole.next_address(WarpId(0));
        let _ = whole.next_address(WarpId(1));
        let w2 = whole.next_address(WarpId(2));
        assert_eq!(sm1.next_address(WarpId(0)), w2);
    }

    #[test]
    fn presets_are_distinct() {
        assert!(
            MemoryBehavior::streaming().footprint_bytes
                > MemoryBehavior::cache_resident().footprint_bytes
        );
        assert!(
            MemoryBehavior::irregular().reuse_probability
                < MemoryBehavior::cache_resident().reuse_probability
        );
        assert_eq!(MemoryBehavior::default(), MemoryBehavior::streaming());
    }
}
