//! Simulation statistics.

use serde::{Deserialize, Serialize};

use ltrf_tech::AccessCounts;

use crate::memory::MemoryStats;
use crate::types::Cycle;

/// Result of simulating one kernel on one SM.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct SimStats {
    /// Total simulated cycles.
    pub cycles: Cycle,
    /// Dynamic instructions executed across all warps.
    pub instructions: u64,
    /// Number of warps that ran to completion.
    pub warps_completed: usize,
    /// Number of warps that were resident on the SM.
    pub warps_resident: usize,
    /// Cycles in which no instruction could be issued.
    pub idle_cycles: Cycle,
    /// Cycles warps spent stalled on PREFETCH operations (LTRF designs).
    pub prefetch_stall_cycles: Cycle,
    /// Warp activations performed by the two-level scheduler.
    pub warp_activations: u64,
    /// Register-file access counters (for the power model).
    pub regfile_accesses: AccessCounts,
    /// Register-file-cache hit rate, if the organization has a cache.
    pub register_cache_hit_rate: Option<f64>,
    /// Memory-hierarchy statistics.
    pub memory: MemoryStats,
    /// True if the simulation hit the safety cycle cap before all warps
    /// finished.
    pub truncated: bool,
}

impl SimStats {
    /// Instructions per cycle.
    #[must_use]
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// Fraction of cycles with no issue.
    #[must_use]
    pub fn idle_fraction(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.idle_cycles as f64 / self.cycles as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipc_and_idle_fraction() {
        let s = SimStats {
            cycles: 1000,
            instructions: 1500,
            idle_cycles: 250,
            ..SimStats::default()
        };
        assert!((s.ipc() - 1.5).abs() < 1e-9);
        assert!((s.idle_fraction() - 0.25).abs() < 1e-9);
    }

    #[test]
    fn zero_cycles_is_not_a_division_error() {
        let s = SimStats::default();
        assert_eq!(s.ipc(), 0.0);
        assert_eq!(s.idle_fraction(), 0.0);
    }
}
