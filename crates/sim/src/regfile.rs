//! The interface between the SM pipeline and a register-file organization.
//!
//! The timing simulator is agnostic to how registers are stored: it asks a
//! [`RegisterFileModel`] for operand-read and write-back timing, and notifies
//! it about control-flow and scheduling events (block entries, warp
//! activation and deactivation). The organizations of the paper — baseline,
//! RFC, SHRF, LTRF, LTRF+, and the ideal register file — implement this trait
//! in `ltrf-core`. A plain [`DirectRegisterFile`] (no cache, every access
//! goes to the main register file) lives here so the simulator can be tested
//! on its own.

use ltrf_isa::{ArchReg, BlockId, RegSet};
use ltrf_tech::AccessCounts;

use crate::config::RegFileTiming;
use crate::types::{BankArbiter, Cycle, WarpId};

/// A register-file organization, as seen by the SM pipeline.
pub trait RegisterFileModel {
    /// Human-readable name of the organization (used in reports).
    fn name(&self) -> &str;

    /// Called when a warp is promoted into the active pool while standing at
    /// `block`. Returns the cycle at which the warp may begin issuing
    /// instructions (e.g. after refetching its register working-set).
    fn warp_activated(&mut self, warp: WarpId, block: BlockId, now: Cycle) -> Cycle;

    /// Called when a warp is demoted from the active pool (long-latency
    /// stall) or finishes. Implementations write back whatever state they
    /// must preserve.
    fn warp_deactivated(&mut self, warp: WarpId, now: Cycle);

    /// Called when a warp's control flow enters `block`. Returns the cycle at
    /// which the warp may execute the block's first instruction — later than
    /// `now` when a PREFETCH must complete first.
    fn block_entered(&mut self, warp: WarpId, block: BlockId, now: Cycle) -> Cycle;

    /// Requests the source operands in `regs` for `warp`. Returns the cycle
    /// at which all operands have been collected.
    fn read_operands(&mut self, warp: WarpId, regs: &RegSet, now: Cycle) -> Cycle;

    /// Writes `reg` for `warp` (the instruction's destination). Returns the
    /// cycle at which the value is visible to later reads.
    fn write_register(&mut self, warp: WarpId, reg: ArchReg, now: Cycle) -> Cycle;

    /// Informs the organization that the registers in `dying` were read for
    /// the last time by the instruction just issued (the dead-operand bits of
    /// the paper's LTRF+). Organizations that do not track liveness ignore
    /// this.
    fn operands_dead(&mut self, warp: WarpId, dying: &RegSet) {
        let _ = (warp, dying);
    }

    /// Cumulative access counters for power accounting.
    fn access_counts(&self) -> AccessCounts;

    /// Hit rate of the register-file cache, if the organization has one.
    fn register_cache_hit_rate(&self) -> Option<f64> {
        None
    }

    /// Total cycles warps spent stalled waiting for PREFETCH operations, if
    /// the organization prefetches.
    fn prefetch_stall_cycles(&self) -> Cycle {
        0
    }
}

/// The conventional non-cached register file: every operand read and write
/// accesses the main register file directly.
///
/// This is the `BL` comparison point of the paper (with the latency factor of
/// whichever Table 2 configuration is being evaluated) and also the
/// register-file model used by simulator self-tests.
#[derive(Debug)]
pub struct DirectRegisterFile {
    timing: RegFileTiming,
    banks: BankArbiter,
    counts: AccessCounts,
}

impl DirectRegisterFile {
    /// Creates a direct-mapped (non-cached) register file with the given
    /// timing.
    #[must_use]
    pub fn new(timing: RegFileTiming) -> Self {
        DirectRegisterFile {
            banks: BankArbiter::new(timing.mrf_banks, timing.mrf_latency()),
            timing,
            counts: AccessCounts::default(),
        }
    }

    /// Returns the timing parameters this model was built with.
    #[must_use]
    pub fn timing(&self) -> &RegFileTiming {
        &self.timing
    }
}

impl RegisterFileModel for DirectRegisterFile {
    fn name(&self) -> &str {
        "BL"
    }

    fn warp_activated(&mut self, _warp: WarpId, _block: BlockId, now: Cycle) -> Cycle {
        now
    }

    fn warp_deactivated(&mut self, _warp: WarpId, _now: Cycle) {}

    fn block_entered(&mut self, _warp: WarpId, _block: BlockId, now: Cycle) -> Cycle {
        now
    }

    fn read_operands(&mut self, warp: WarpId, regs: &RegSet, now: Cycle) -> Cycle {
        if regs.is_empty() {
            return now;
        }
        self.counts.mrf_reads += regs.len() as u64;
        // Registers of a warp are interleaved across banks, and different
        // warps are offset so they do not all hit bank 0 with r0.
        let bank_count = self.banks.bank_count();
        let banks = regs.iter().map(|r| (r.index() + warp.index()) % bank_count);
        self.banks.access_all(banks, now)
    }

    fn write_register(&mut self, _warp: WarpId, _reg: ArchReg, now: Cycle) -> Cycle {
        // Write-backs happen when the producing operation completes, which
        // can be far in the future for loads. They use the banks' write
        // ports and do not contend with present-time operand reads, so they
        // are charged the access latency without arbitration.
        self.counts.mrf_writes += 1;
        now + self.banks.access_latency()
    }

    fn access_counts(&self) -> AccessCounts {
        self.counts
    }
}

/// An idealised register file: unlimited bandwidth and the baseline (1×)
/// latency regardless of capacity. This is the paper's `Ideal` comparison
/// point.
#[derive(Debug)]
pub struct IdealRegisterFile {
    latency: Cycle,
    counts: AccessCounts,
}

impl IdealRegisterFile {
    /// Creates an ideal register file with the baseline access latency.
    #[must_use]
    pub fn new(timing: RegFileTiming) -> Self {
        IdealRegisterFile {
            latency: timing.baseline_mrf_latency,
            counts: AccessCounts::default(),
        }
    }
}

impl RegisterFileModel for IdealRegisterFile {
    fn name(&self) -> &str {
        "Ideal"
    }

    fn warp_activated(&mut self, _warp: WarpId, _block: BlockId, now: Cycle) -> Cycle {
        now
    }

    fn warp_deactivated(&mut self, _warp: WarpId, _now: Cycle) {}

    fn block_entered(&mut self, _warp: WarpId, _block: BlockId, now: Cycle) -> Cycle {
        now
    }

    fn read_operands(&mut self, _warp: WarpId, regs: &RegSet, now: Cycle) -> Cycle {
        self.counts.mrf_reads += regs.len() as u64;
        now + self.latency
    }

    fn write_register(&mut self, _warp: WarpId, _reg: ArchReg, now: Cycle) -> Cycle {
        self.counts.mrf_writes += 1;
        now + self.latency
    }

    fn access_counts(&self) -> AccessCounts {
        self.counts
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn regs(ids: &[u8]) -> RegSet {
        ids.iter().map(|&i| ArchReg::new(i)).collect()
    }

    #[test]
    fn direct_rf_charges_mrf_latency() {
        let mut rf = DirectRegisterFile::new(RegFileTiming::default());
        let ready = rf.read_operands(WarpId(0), &regs(&[0, 1]), 100);
        assert_eq!(
            ready, 102,
            "two conflict-free reads finish after one access latency"
        );
        assert_eq!(rf.access_counts().mrf_reads, 2);
        assert_eq!(rf.name(), "BL");
    }

    #[test]
    fn direct_rf_latency_factor_slows_reads() {
        let timing = RegFileTiming::default().with_latency_factor(6.3);
        let mut rf = DirectRegisterFile::new(timing);
        let ready = rf.read_operands(WarpId(0), &regs(&[0]), 0);
        assert_eq!(ready, 13);
        assert_eq!(rf.timing().mrf_latency(), 13);
    }

    #[test]
    fn direct_rf_same_bank_conflicts() {
        let mut rf = DirectRegisterFile::new(RegFileTiming::default());
        // r0 and r16 of the same warp map to the same bank (16 banks).
        let ready = rf.read_operands(WarpId(0), &regs(&[0, 16]), 0);
        assert_eq!(ready, 4, "conflicting reads serialise");
    }

    #[test]
    fn direct_rf_control_events_are_free() {
        let mut rf = DirectRegisterFile::new(RegFileTiming::default());
        assert_eq!(rf.warp_activated(WarpId(1), BlockId(0), 7), 7);
        assert_eq!(rf.block_entered(WarpId(1), BlockId(2), 9), 9);
        rf.warp_deactivated(WarpId(1), 10);
        assert_eq!(rf.register_cache_hit_rate(), None);
        assert_eq!(rf.prefetch_stall_cycles(), 0);
    }

    #[test]
    fn ideal_rf_never_conflicts() {
        let mut rf = IdealRegisterFile::new(RegFileTiming::default());
        let a = rf.read_operands(WarpId(0), &regs(&[0, 16, 32, 48]), 0);
        let b = rf.read_operands(WarpId(1), &regs(&[0, 16]), 0);
        assert_eq!(a, 2);
        assert_eq!(b, 2);
        assert_eq!(rf.write_register(WarpId(0), ArchReg::new(0), 10), 12);
        assert_eq!(rf.access_counts().mrf_reads, 6);
        assert_eq!(rf.name(), "Ideal");
    }

    #[test]
    fn empty_operand_set_is_instant() {
        let mut rf = DirectRegisterFile::new(RegFileTiming::default());
        assert_eq!(rf.read_operands(WarpId(0), &RegSet::new(), 42), 42);
    }
}
