//! The engine-agnostic simulation drivers.
//!
//! Both engines — the reference tick loop ([`crate::engine::Engine`]) and
//! the allocation-free fast path ([`crate::fast::FastEngine`]) — expose the
//! same five stepping primitives through [`SmEngine`], and both the
//! single-SM and the multi-SM lock-step schedules are written once against
//! that trait. This is what makes the differential guarantee auditable: the
//! *schedule* (which cycles are visited, in which order SMs issue, when
//! pools refill) is shared code, so the fast engine can only diverge from
//! the reference through its own stepping primitives — exactly the surface
//! the differential test suite pins.

use ltrf_isa::Kernel;

use crate::config::SmConfig;
use crate::memory::{AddressGenerator, MemoryHierarchy};
use crate::regfile::RegisterFileModel;
use crate::stats::SimStats;
use crate::types::Cycle;

/// The stepping primitives one SM engine exposes to the drivers.
///
/// `next_event_after` takes `&mut self` because the fast engine retires due
/// wakeup-queue entries into its eligible heap while computing the horizon;
/// the reference engine's implementation is read-only.
pub(crate) trait SmEngine<'a>: Sized {
    /// Assembles an engine from externally constructed parts: the memory
    /// hierarchy (private or a shared port), the address generator (whole
    /// footprint or an SM's shard), and one deterministic seed per resident
    /// warp.
    fn with_parts(
        kernel: &'a Kernel,
        config: &'a SmConfig,
        regfile: &'a mut dyn RegisterFileModel,
        memory: MemoryHierarchy,
        addresses: AddressGenerator,
        warp_seeds: &[u64],
    ) -> Self;

    /// Whether every resident warp has retired.
    fn is_done(&self) -> bool;

    /// Records a cycle in which this SM issued nothing.
    fn note_idle(&mut self);

    /// Issues up to `issue_width` instructions from the active pool at
    /// `cycle`. Returns the number of instructions issued.
    fn issue_cycle(&mut self, cycle: Cycle) -> usize;

    /// Promotes eligible warps into the active pool until it is full.
    fn refill_active_pool(&mut self, cycle: Cycle);

    /// Earliest cycle after `cycle` at which anything can change, used to
    /// fast-forward through idle periods.
    fn next_event_after(&mut self, cycle: Cycle) -> Cycle;

    /// Closes the books at `cycle` and returns the SM's statistics.
    fn finalize(self, cycle: Cycle) -> SimStats;
}

/// Drives one engine to completion with idle-period fast-forwarding.
pub(crate) fn run_single<'a, E: SmEngine<'a>>(mut engine: E, max_cycles: Cycle) -> SimStats {
    let mut cycle: Cycle = 0;
    engine.refill_active_pool(cycle);
    while !engine.is_done() && cycle < max_cycles {
        let issued = engine.issue_cycle(cycle);
        if issued == 0 {
            engine.note_idle();
            let next = engine.next_event_after(cycle);
            cycle = next.max(cycle + 1);
        } else {
            cycle += 1;
        }
        engine.refill_active_pool(cycle);
    }
    engine.finalize(cycle)
}

/// Drives several engines in lock-step: every SM issues at each visited
/// cycle in SM-index order; when no SM can issue, the clock fast-forwards to
/// the earliest event any unfinished SM is waiting on. Returns the per-SM
/// statistics (in SM order) and the final cycle.
pub(crate) fn run_lockstep<'a, E: SmEngine<'a>>(
    mut engines: Vec<E>,
    max_cycles: Cycle,
) -> (Vec<SimStats>, Cycle) {
    let mut cycle: Cycle = 0;
    for engine in &mut engines {
        engine.refill_active_pool(cycle);
    }
    while engines.iter().any(|e| !e.is_done()) && cycle < max_cycles {
        let mut any_issued = false;
        for engine in &mut engines {
            if engine.is_done() {
                continue;
            }
            if engine.issue_cycle(cycle) == 0 {
                engine.note_idle();
            } else {
                any_issued = true;
            }
        }
        if any_issued {
            cycle += 1;
        } else {
            let mut next = Cycle::MAX;
            for engine in &mut engines {
                if !engine.is_done() {
                    next = next.min(engine.next_event_after(cycle));
                }
            }
            let next = if next == Cycle::MAX { cycle + 1 } else { next };
            cycle = next.max(cycle + 1);
        }
        for engine in &mut engines {
            if !engine.is_done() {
                engine.refill_active_pool(cycle);
            }
        }
    }
    let per_sm: Vec<SimStats> = engines
        .into_iter()
        .map(|engine| engine.finalize(cycle))
        .collect();
    (per_sm, cycle)
}
