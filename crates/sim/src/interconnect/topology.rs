//! The three network topologies behind the [`Interconnect`] trait.
//!
//! * [`Ideal`] — zero-cost transport, bit-identical to the historical direct
//!   slice access. The default.
//! * [`Crossbar`] — every SM owns an injection link and every slice an
//!   output port; a request serializes over both, plus a constant traversal
//!   latency. Contention exists only at the endpoints, so a crossbar
//!   degrades gracefully until many SMs camp on one slice.
//! * [`Mesh2D`] — SMs and slices are placed on a square grid and requests
//!   walk XY dimension-ordered routes over per-direction links, paying
//!   serialization and router latency at every hop. Distance and shared
//!   edges both cost cycles, so a mesh diverges from a crossbar as the chip
//!   scales.
//!
//! All three are deterministic: links arbitrate in call order, and the
//! lock-step driver calls in SM-index order (see the [`link`](super::link)
//! module docs).

use crate::types::Cycle;

use super::link::Link;
use super::{Interconnect, InterconnectStats};

/// Constant crossbar traversal latency (arbitration + wire), in cycles.
pub const CROSSBAR_HOP_LATENCY: Cycle = 4;

/// Per-hop mesh router latency (route computation + switch), in cycles.
pub const MESH_HOP_LATENCY: Cycle = 2;

/// Zero-latency, infinite-bandwidth transport. `route` is the identity on
/// `arrive`, which makes the surrounding `SharedMemory` arithmetic exactly
/// the pre-interconnect sliced-L2 path.
#[derive(Debug, Default)]
pub struct Ideal {
    stats: InterconnectStats,
}

impl Ideal {
    /// A fresh ideal network (no state beyond message counters).
    #[must_use]
    pub fn new() -> Self {
        Ideal::default()
    }
}

impl Interconnect for Ideal {
    fn route(&mut self, _src: usize, _slice: usize, arrive: Cycle) -> Cycle {
        self.stats.record(0, 0);
        arrive
    }

    fn stats(&self) -> InterconnectStats {
        self.stats
    }
}

/// A full SM×slice crossbar: per-SM injection links into the switch and
/// per-slice output ports out of it, with a constant traversal latency in
/// between. A message serializes over its injection link, crosses the
/// switch, then serializes over the destination slice's output port.
#[derive(Debug)]
pub struct Crossbar {
    injection: Vec<Link>,
    output: Vec<Link>,
    serialization: Cycle,
    stats: InterconnectStats,
}

impl Crossbar {
    /// A crossbar joining `sm_count` SMs to `slices` L2 slices, with each
    /// message occupying a link for `serialization` cycles and every link
    /// queue bounded at `queue_depth`.
    #[must_use]
    pub fn new(sm_count: usize, slices: usize, serialization: Cycle, queue_depth: usize) -> Self {
        Crossbar {
            injection: (0..sm_count.max(1))
                .map(|_| Link::new(queue_depth))
                .collect(),
            output: (0..slices.max(1)).map(|_| Link::new(queue_depth)).collect(),
            serialization,
            stats: InterconnectStats::default(),
        }
    }
}

impl Interconnect for Crossbar {
    fn route(&mut self, src: usize, slice: usize, arrive: Cycle) -> Cycle {
        let inj_idx = src % self.injection.len();
        let inj = self.injection[inj_idx].transmit(arrive, self.serialization);
        let crossed = inj.done + CROSSBAR_HOP_LATENCY;
        let out_idx = slice % self.output.len();
        let out = self.output[out_idx].transmit(crossed, self.serialization);
        self.stats
            .record(out.done - arrive, inj.queued + out.queued);
        out.done
    }

    fn stats(&self) -> InterconnectStats {
        let mut stats = self.stats;
        stats.max_link_occupancy = self
            .injection
            .iter()
            .chain(&self.output)
            .map(Link::peak_occupancy)
            .max()
            .unwrap_or(0);
        stats
    }
}

/// A 2D mesh with XY dimension-ordered routing.
///
/// SMs and slices are placed row-major on the smallest square grid that fits
/// them all: SM `i` at node `i`, slice `s` at node `sm_count + s`. A request
/// walks east/west to the destination column, then north/south to the
/// destination row, crossing one per-direction bounded link per hop and
/// paying [`MESH_HOP_LATENCY`] router delay each time. XY routing is
/// deadlock-free and, with call-order link arbitration, fully deterministic.
#[derive(Debug)]
pub struct Mesh2D {
    /// Grid side length.
    side: usize,
    /// Node index of slice `s` is `sm_count + s`.
    sm_count: usize,
    /// Directional links: `(node * 4 + dir)` with dir 0=east, 1=west,
    /// 2=south (increasing y), 3=north (decreasing y).
    links: Vec<Link>,
    serialization: Cycle,
    stats: InterconnectStats,
}

const DIR_EAST: usize = 0;
const DIR_WEST: usize = 1;
const DIR_SOUTH: usize = 2;
const DIR_NORTH: usize = 3;

impl Mesh2D {
    /// A mesh joining `sm_count` SMs and `slices` L2 slices, with each
    /// message occupying a traversed link for `serialization` cycles and
    /// every link queue bounded at `queue_depth`.
    #[must_use]
    pub fn new(sm_count: usize, slices: usize, serialization: Cycle, queue_depth: usize) -> Self {
        let nodes = (sm_count + slices).max(1);
        let side = (1..).find(|s| s * s >= nodes).unwrap_or(1);
        Mesh2D {
            side,
            sm_count,
            links: (0..side * side * 4)
                .map(|_| Link::new(queue_depth))
                .collect(),
            serialization,
            stats: InterconnectStats::default(),
        }
    }

    fn coords(&self, node: usize) -> (usize, usize) {
        (node % self.side, node / self.side)
    }

    /// Manhattan hop count between an SM and a slice (exposed for tests).
    #[must_use]
    pub fn hops(&self, src_sm: usize, slice: usize) -> usize {
        let (sx, sy) = self.coords(src_sm);
        let (dx, dy) = self.coords(self.sm_count + slice);
        sx.abs_diff(dx) + sy.abs_diff(dy)
    }

    fn traverse(&mut self, node: usize, dir: usize, at: Cycle) -> (Cycle, Cycle) {
        let transfer = self.links[node * 4 + dir].transmit(at, self.serialization);
        (transfer.done + MESH_HOP_LATENCY, transfer.queued)
    }
}

impl Interconnect for Mesh2D {
    fn route(&mut self, src: usize, slice: usize, arrive: Cycle) -> Cycle {
        let dest = self.sm_count + slice;
        let (mut x, mut y) = self.coords(src.min(self.side * self.side - 1));
        let (dx, dy) = self.coords(dest.min(self.side * self.side - 1));
        let mut at = arrive;
        let mut queued = 0;
        // X first, then Y: dimension-ordered routing.
        while x != dx {
            let dir = if x < dx { DIR_EAST } else { DIR_WEST };
            let (next, wait) = self.traverse(y * self.side + x, dir, at);
            at = next;
            queued += wait;
            if x < dx {
                x += 1;
            } else {
                x -= 1;
            }
        }
        while y != dy {
            let dir = if y < dy { DIR_SOUTH } else { DIR_NORTH };
            let (next, wait) = self.traverse(y * self.side + x, dir, at);
            at = next;
            queued += wait;
            if y < dy {
                y += 1;
            } else {
                y -= 1;
            }
        }
        self.stats.record(at - arrive, queued);
        at
    }

    fn stats(&self) -> InterconnectStats {
        let mut stats = self.stats;
        stats.max_link_occupancy = self
            .links
            .iter()
            .map(Link::peak_occupancy)
            .max()
            .unwrap_or(0);
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ideal_is_the_identity_on_arrival_time() {
        let mut net = Ideal::new();
        for arrive in [0u64, 1, 17, 1_000_000] {
            assert_eq!(net.route(3, 7, arrive), arrive);
        }
        let stats = net.stats();
        assert_eq!(stats.messages, 4);
        assert_eq!(stats.total_latency, 0);
        assert_eq!(stats.max_link_occupancy, 0);
    }

    #[test]
    fn crossbar_uncontended_latency_is_two_links_plus_traversal() {
        let mut net = Crossbar::new(4, 8, 4, 8);
        let port = net.route(0, 5, 100);
        assert_eq!(port, 100 + 4 + CROSSBAR_HOP_LATENCY + 4);
        let stats = net.stats();
        assert_eq!(stats.messages, 1);
        assert_eq!(stats.total_queue_wait, 0);
    }

    #[test]
    fn crossbar_contends_at_the_slice_output_port() {
        let mut net = Crossbar::new(4, 8, 4, 8);
        // Four SMs, same slice, same cycle: injection links are private so
        // the pile-up happens at slice 2's output port, in SM-index order.
        let ports: Vec<Cycle> = (0..4).map(|sm| net.route(sm, 2, 0)).collect();
        assert_eq!(ports, vec![12, 16, 20, 24]);
        let stats = net.stats();
        assert_eq!(stats.max_queue_wait, 12);
        assert_eq!(stats.max_link_occupancy, 4);
    }

    #[test]
    fn crossbar_private_slices_do_not_contend() {
        let mut net = Crossbar::new(4, 8, 4, 8);
        let ports: Vec<Cycle> = (0..4).map(|sm| net.route(sm, sm, 0)).collect();
        assert_eq!(ports, vec![12; 4]);
        assert_eq!(net.stats().total_queue_wait, 0);
    }

    #[test]
    fn mesh_latency_grows_with_manhattan_distance() {
        let net_probe = Mesh2D::new(16, 32, 4, 8);
        // 16 SMs + 32 slices → 48 nodes → 7×7 grid.
        assert_eq!(net_probe.side, 7);
        let mut net = Mesh2D::new(16, 32, 4, 8);
        let near_hops = net_probe.hops(15, 0); // SM node 15 → slice node 16: adjacent-ish
        let far_hops = net_probe.hops(0, 31); // SM node 0 → slice node 47: corner to corner
        assert!(far_hops > near_hops);
        let near = net.route(15, 0, 0);
        let far = net.route(0, 31, 0);
        assert_eq!(near, near_hops as u64 * (4 + MESH_HOP_LATENCY));
        assert_eq!(far, far_hops as u64 * (4 + MESH_HOP_LATENCY));
    }

    #[test]
    fn mesh_shared_edges_queue_in_call_order() {
        // Two SMs route to slice 0 through a shared edge.
        let mut net = Mesh2D::new(4, 4, 4, 8);
        // 8 nodes → 3×3 grid. SM 0 at (0,0), SM 1 at (1,0); slice 0 at node
        // 4 = (1,1). SM 0's XY route goes east then down (1,0)'s south link
        // — the same edge SM 1 uses. Two back-to-back messages from SM 1
        // keep that edge busy past SM 0's arrival.
        let a1 = net.route(1, 0, 0);
        let a2 = net.route(1, 0, 0);
        assert!(a2 > a1, "same-edge messages serialize in call order");
        let b = net.route(0, 0, 0);
        let reference = net.hops(0, 0) as u64 * (4 + MESH_HOP_LATENCY);
        assert!(b > reference, "queueing added latency beyond pure distance");
        assert!(net.stats().total_queue_wait > 0);
    }

    #[test]
    fn mesh_routing_is_deterministic() {
        let run = || {
            let mut net = Mesh2D::new(16, 32, 4, 8);
            let mut out = Vec::new();
            for round in 0..4u64 {
                for sm in 0..16 {
                    out.push(net.route(sm, (sm * 7 + round as usize) % 32, round * 3));
                }
            }
            (out, net.stats())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn crossbar_and_mesh_diverge_under_identical_load() {
        let mut xbar = Crossbar::new(16, 32, 4, 8);
        let mut mesh = Mesh2D::new(16, 32, 4, 8);
        let (mut xbar_last, mut mesh_last) = (0, 0);
        for round in 0..8u64 {
            for sm in 0..16 {
                let slice = (sm * 5 + round as usize) % 32;
                xbar_last = xbar.route(sm, slice, round * 2);
                mesh_last = mesh.route(sm, slice, round * 2);
            }
        }
        let _ = (xbar_last, mesh_last);
        assert_ne!(
            xbar.stats().total_latency,
            mesh.stats().total_latency,
            "topologies must be distinguishable under load"
        );
    }
}
