//! The SM↔L2 interconnection network.
//!
//! The multi-SM contention model used to reach the shared L2 by indexing a
//! slice directly — a topology-less model whose high-`sm_count` trends mix
//! up slice-port contention with transport that a real chip would pay for in
//! the network. This module makes the network a first-class, sweepable
//! subsystem:
//!
//! * [`AddressDecoder`] (in [`addrdec`]) decides which slice a line address
//!   belongs to, replacing the implicit modulo mapping;
//! * [`Link`] (in [`link`]) is a bandwidth-limited wire with a bounded FIFO
//!   queue and deterministic call-order arbitration;
//! * the [`Interconnect`] trait models transport from an SM to a slice's
//!   input port; [`topology`] provides [`topology::Ideal`] (zero-cost
//!   transport — bit-identical to the historical direct access, and the
//!   default), [`topology::Crossbar`] (per-SM injection link + per-slice
//!   output port) and [`topology::Mesh2D`] (XY dimension-ordered routing
//!   over a square grid of bounded links);
//! * [`InterconnectConfig`] selects and parameterizes all of the above, and
//!   [`InterconnectStats`] aggregates what the network observed.
//!
//! ## Determinism and skip-ahead
//!
//! The lock-step driver visits SMs in index order at every simulated cycle,
//! so same-cycle requests reach the network in a fixed order and every link
//! grant is a deterministic round-robin — simulations are bit-reproducible
//! for a given seed and configuration. Network latency is folded into the
//! completion cycle `MemoryHierarchy::access_global` returns at *issue*
//! time, which becomes the issuing warp's stall/wakeup cycle; the fast
//! engine's `next_event_after` horizon is computed from exactly those warp
//! wakeups, so in-flight network occupancy bounds skip-ahead with no extra
//! bookkeeping.

pub mod addrdec;
pub mod link;
pub mod topology;

use serde::{Deserialize, Serialize};

pub use addrdec::{AddressDecoder, InterleaveMode};
pub use link::{Link, Transfer};
pub use topology::{Crossbar, Ideal, Mesh2D};

use crate::types::Cycle;

/// Which network connects the SMs to the L2 slices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum Topology {
    /// Zero-latency, infinite-bandwidth transport: requests reach their
    /// slice the cycle they leave the L1. Bit-identical to the
    /// pre-interconnect direct slice access, and therefore the default.
    #[default]
    Ideal,
    /// A full crossbar: every SM owns an injection link and every slice an
    /// output port; contention happens only at the endpoints.
    Crossbar,
    /// A 2D mesh with XY dimension-ordered routing: SMs and slices sit on a
    /// square grid and requests pay per-hop latency and per-link bandwidth
    /// on every traversed edge.
    Mesh2D,
}

impl Topology {
    /// Short lowercase label, used by CSV reports and flag parsing.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            Topology::Ideal => "ideal",
            Topology::Crossbar => "crossbar",
            Topology::Mesh2D => "mesh",
        }
    }
}

impl std::str::FromStr for Topology {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "ideal" => Ok(Topology::Ideal),
            "crossbar" | "xbar" => Ok(Topology::Crossbar),
            "mesh" | "mesh2d" => Ok(Topology::Mesh2D),
            other => Err(format!("unknown topology `{other}` (ideal|crossbar|mesh)")),
        }
    }
}

/// Configuration of the SM↔L2 network. Part of [`crate::GpuConfig`] and —
/// through `ltrf_core::ExperimentConfig` — of every content-addressed cache
/// key (the all-default configuration is elided from key material, so
/// historical `Ideal` keys stay byte-stable).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct InterconnectConfig {
    /// The network topology.
    pub topology: Topology,
    /// Link width in bytes per cycle; a cache line occupies each traversed
    /// link for `ceil(line_bytes / link_width)` cycles.
    pub link_width: u64,
    /// Bounded per-link queue depth; a full queue backpressures arrivals
    /// until the head-of-line transfer completes.
    pub queue_depth: usize,
    /// How line addresses are interleaved across L2 slices.
    pub interleave: InterleaveMode,
}

impl Default for InterconnectConfig {
    fn default() -> Self {
        // 32 B/cycle links (a 128 B line serializes in 4 cycles) and
        // 8-deep queues, Maxwell-ballpark figures. Topology and interleave
        // default to the historical bit-identical behaviour.
        InterconnectConfig {
            topology: Topology::Ideal,
            link_width: 32,
            queue_depth: 8,
            interleave: InterleaveMode::Line,
        }
    }
}

impl InterconnectConfig {
    /// A configuration with the given topology and everything else default.
    #[must_use]
    pub fn with_topology(topology: Topology) -> Self {
        InterconnectConfig {
            topology,
            ..InterconnectConfig::default()
        }
    }

    /// Cycles a cache line of `line_bytes` occupies one link.
    #[must_use]
    pub fn serialization_cycles(&self, line_bytes: u64) -> Cycle {
        line_bytes.div_ceil(self.link_width.max(1)).max(1)
    }
}

/// What the network observed over a run. All counters are message-granular
/// (one message per L1 miss routed to a slice); latency is the full
/// SM-to-slice-port transport time including queueing, and the histogram
/// buckets it by cycles.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct InterconnectStats {
    /// Messages routed through the network.
    pub messages: u64,
    /// Total SM→slice-port transport latency, in cycles (hop latency,
    /// serialization, and queueing).
    pub total_latency: u64,
    /// Worst single-message transport latency observed.
    pub max_latency: u64,
    /// Total cycles messages spent queued at busy or full links.
    pub total_queue_wait: u64,
    /// Worst single-message queueing delay observed.
    pub max_queue_wait: u64,
    /// Peak messages simultaneously in flight on the busiest link.
    pub max_link_occupancy: u64,
    /// Messages delivered within 4 cycles.
    pub latency_le_4: u64,
    /// Messages delivered in 5–16 cycles.
    pub latency_le_16: u64,
    /// Messages delivered in 17–64 cycles.
    pub latency_le_64: u64,
    /// Messages that took more than 64 cycles.
    pub latency_gt_64: u64,
}

impl InterconnectStats {
    /// Folds one delivered message into the counters.
    pub fn record(&mut self, latency: Cycle, queue_wait: Cycle) {
        self.messages += 1;
        self.total_latency += latency;
        self.max_latency = self.max_latency.max(latency);
        self.total_queue_wait += queue_wait;
        self.max_queue_wait = self.max_queue_wait.max(queue_wait);
        match latency {
            0..=4 => self.latency_le_4 += 1,
            5..=16 => self.latency_le_16 += 1,
            17..=64 => self.latency_le_64 += 1,
            _ => self.latency_gt_64 += 1,
        }
    }

    /// Mean SM→slice-port latency per message; zero if nothing was routed.
    #[must_use]
    pub fn mean_latency(&self) -> f64 {
        if self.messages == 0 {
            0.0
        } else {
            self.total_latency as f64 / self.messages as f64
        }
    }

    /// Mean queueing delay per message; zero if nothing was routed.
    #[must_use]
    pub fn mean_queue_wait(&self) -> f64 {
        if self.messages == 0 {
            0.0
        } else {
            self.total_queue_wait as f64 / self.messages as f64
        }
    }
}

/// Transport from an SM to an L2 slice's input port.
///
/// Implementations are single-threaded state machines owned by the shared
/// memory; [`route`](Interconnect::route) is called once per L1 miss, in the
/// deterministic lock-step order, and returns when the request reaches the
/// slice port (slice-port occupancy arbitration then happens in
/// `SharedMemory`, identically for every topology).
pub trait Interconnect: std::fmt::Debug {
    /// Routes a request from SM `src` to slice `slice`, entering the network
    /// at `arrive`; returns the cycle it reaches the slice's input port.
    fn route(&mut self, src: usize, slice: usize, arrive: Cycle) -> Cycle;

    /// Aggregate network statistics for the run so far.
    fn stats(&self) -> InterconnectStats;
}

/// Builds the configured network for `sm_count` SMs and `slices` L2 slices
/// over `line_bytes`-byte messages.
#[must_use]
pub fn build_network(
    config: &InterconnectConfig,
    sm_count: usize,
    slices: usize,
    line_bytes: u64,
) -> Box<dyn Interconnect> {
    let ser = config.serialization_cycles(line_bytes);
    match config.topology {
        Topology::Ideal => Box::new(Ideal::new()),
        Topology::Crossbar => Box::new(Crossbar::new(sm_count, slices, ser, config.queue_depth)),
        Topology::Mesh2D => Box::new(Mesh2D::new(sm_count, slices, ser, config.queue_depth)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topology_labels_round_trip() {
        for topo in [Topology::Ideal, Topology::Crossbar, Topology::Mesh2D] {
            assert_eq!(topo.label().parse::<Topology>().unwrap(), topo);
        }
        assert!("torus".parse::<Topology>().is_err());
    }

    #[test]
    fn serialization_rounds_up_and_clamps() {
        let cfg = InterconnectConfig::default();
        assert_eq!(cfg.serialization_cycles(128), 4);
        assert_eq!(cfg.serialization_cycles(129), 5);
        let narrow = InterconnectConfig {
            link_width: 0,
            ..cfg
        };
        assert_eq!(narrow.serialization_cycles(128), 128);
    }

    #[test]
    fn stats_fold_means_and_histogram() {
        let mut s = InterconnectStats::default();
        s.record(3, 0);
        s.record(10, 6);
        s.record(100, 80);
        assert_eq!(s.messages, 3);
        assert_eq!(
            (
                s.latency_le_4,
                s.latency_le_16,
                s.latency_le_64,
                s.latency_gt_64
            ),
            (1, 1, 0, 1)
        );
        assert_eq!(s.max_latency, 100);
        assert_eq!(s.max_queue_wait, 80);
        assert!((s.mean_latency() - 113.0 / 3.0).abs() < 1e-12);
        assert_eq!(InterconnectStats::default().mean_latency(), 0.0);
    }

    #[test]
    fn default_config_is_ideal_line_interleave() {
        let cfg = InterconnectConfig::default();
        assert_eq!(cfg.topology, Topology::Ideal);
        assert_eq!(cfg.interleave, InterleaveMode::Line);
        assert_eq!(cfg, InterconnectConfig::with_topology(Topology::Ideal));
    }
}
