//! A single network link: bandwidth-limited, with a bounded FIFO queue.
//!
//! Every topology is assembled from these. A link transfers one message at a
//! time, occupying the wire for the message's serialization time
//! (`ceil(line_bytes / link_width)` cycles, computed by the topology). At
//! most `queue_depth` messages may be in flight (transferring or queued) at
//! once: an arrival finding the queue full is backpressured until the
//! head-of-line transfer completes and frees its slot.
//!
//! Arbitration is deterministic FIFO in *call order*: the multi-SM driver
//! visits SMs in index order at every simulated cycle, so requests arriving
//! at the same cycle are granted the link in SM-index order — a fixed
//! round-robin that makes every simulation bit-reproducible.

use std::collections::VecDeque;

use crate::types::Cycle;

/// Outcome of pushing one message through a link.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Transfer {
    /// Cycles the message waited (backpressure + wire busy) before its
    /// transfer began.
    pub queued: Cycle,
    /// Cycle the message has fully crossed the link.
    pub done: Cycle,
}

/// One bandwidth-limited, bounded-queue network link.
#[derive(Debug, Clone)]
pub struct Link {
    /// Cycle the wire is next free to begin a transfer.
    free: Cycle,
    /// Completion cycles of in-flight messages, oldest first.
    inflight: VecDeque<Cycle>,
    /// Maximum messages in flight (transferring or queued) at once.
    depth: usize,
    /// Peak `inflight` population observed (per-link occupancy stat).
    peak_occupancy: u64,
}

impl Link {
    /// A link admitting at most `depth` in-flight messages.
    #[must_use]
    pub fn new(depth: usize) -> Self {
        let depth = depth.max(1);
        Link {
            free: 0,
            inflight: VecDeque::with_capacity(depth),
            depth,
            peak_occupancy: 0,
        }
    }

    /// Pushes a message arriving at `arrive` that occupies the wire for
    /// `occupancy` cycles; returns when the transfer completed and how long
    /// the message waited.
    pub fn transmit(&mut self, arrive: Cycle, occupancy: Cycle) -> Transfer {
        self.drain(arrive);
        let mut admitted = arrive;
        if self.inflight.len() >= self.depth {
            // Queue full: this message cannot even occupy a queue slot until
            // enough older transfers complete to bring the population under
            // the bound.
            let unblock = self.inflight[self.inflight.len() - self.depth];
            admitted = admitted.max(unblock);
            self.drain(admitted);
        }
        let start = admitted.max(self.free);
        let done = start + occupancy;
        self.free = done;
        self.inflight.push_back(done);
        self.peak_occupancy = self.peak_occupancy.max(self.inflight.len() as u64);
        Transfer {
            queued: start - arrive,
            done,
        }
    }

    /// Peak number of messages simultaneously in flight on this link.
    #[must_use]
    pub fn peak_occupancy(&self) -> u64 {
        self.peak_occupancy
    }

    fn drain(&mut self, now: Cycle) {
        while self.inflight.front().is_some_and(|&done| done <= now) {
            self.inflight.pop_front();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uncontended_transfer_takes_serialization_time_only() {
        let mut link = Link::new(8);
        let t = link.transmit(100, 4);
        assert_eq!(
            t,
            Transfer {
                queued: 0,
                done: 104
            }
        );
        // A later arrival after the wire is free also sails through.
        let t = link.transmit(200, 4);
        assert_eq!(
            t,
            Transfer {
                queued: 0,
                done: 204
            }
        );
    }

    #[test]
    fn same_cycle_arrivals_serialize_in_call_order() {
        let mut link = Link::new(8);
        let a = link.transmit(0, 4);
        let b = link.transmit(0, 4);
        let c = link.transmit(0, 4);
        assert_eq!((a.queued, a.done), (0, 4));
        assert_eq!((b.queued, b.done), (4, 8));
        assert_eq!((c.queued, c.done), (8, 12));
        assert_eq!(link.peak_occupancy(), 3);
    }

    #[test]
    fn full_queue_backpressures_until_the_head_completes() {
        let mut link = Link::new(2);
        let a = link.transmit(0, 10); // done 10
        let b = link.transmit(0, 10); // queued behind a, done 20
        assert_eq!(a.done, 10);
        assert_eq!(b.done, 20);
        // Queue holds {10, 20}: a third message at cycle 0 cannot take a
        // slot until `a` completes at 10, then waits for the wire until 20.
        let c = link.transmit(0, 10);
        assert_eq!(c.queued, 20);
        assert_eq!(c.done, 30);
        assert_eq!(link.peak_occupancy(), 2, "population never exceeds depth");
    }

    #[test]
    fn determinism_same_schedule_same_answers() {
        let schedule = [(0u64, 3u64), (1, 3), (1, 5), (9, 2), (9, 2), (40, 1)];
        let run = || {
            let mut link = Link::new(3);
            schedule
                .iter()
                .map(|&(at, occ)| link.transmit(at, occ))
                .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
