//! Address decoding: which L2 slice a line address belongs to.
//!
//! The pre-interconnect contention model hard-coded line-granular modulo
//! interleaving inside `SharedMemory::access`. The decoder makes that policy
//! explicit and configurable: [`InterleaveMode::Line`] reproduces the
//! historical mapping bit for bit (and is the default), while
//! [`InterleaveMode::XorFold`] folds the upper line-index bits into the
//! slice index the way real GPU address decoders hash channel/slice bits to
//! spread power-of-two strides across slices.

use serde::{Deserialize, Serialize};

/// How line addresses are interleaved across L2 slices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum InterleaveMode {
    /// Consecutive cache lines map to consecutive slices:
    /// `(line_addr / line_bytes) % slices`. This is exactly the historical
    /// implicit mapping, so `Line` keeps every pre-interconnect result
    /// bit-identical.
    #[default]
    Line,
    /// The line index is XOR-folded (`idx ^ (idx >> 16) ^ (idx >> 32)`)
    /// before the modulo, hashing higher-order bits into the slice index so
    /// that large power-of-two strides do not camp on one slice.
    XorFold,
}

impl InterleaveMode {
    /// Short lowercase label, used by CSV reports and flag parsing.
    #[must_use]
    pub fn label(&self) -> &'static str {
        match self {
            InterleaveMode::Line => "line",
            InterleaveMode::XorFold => "xor",
        }
    }
}

impl std::str::FromStr for InterleaveMode {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "line" => Ok(InterleaveMode::Line),
            "xor" | "xor-fold" | "xorfold" => Ok(InterleaveMode::XorFold),
            other => Err(format!("unknown interleave mode `{other}` (line|xor)")),
        }
    }
}

/// Maps line addresses to L2 slice indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AddressDecoder {
    line_bytes: u64,
    slices: usize,
    interleave: InterleaveMode,
}

impl AddressDecoder {
    /// Builds a decoder over `slices` slices of `line_bytes`-byte lines.
    #[must_use]
    pub fn new(line_bytes: u64, slices: usize, interleave: InterleaveMode) -> Self {
        AddressDecoder {
            line_bytes: line_bytes.max(1),
            slices: slices.max(1),
            interleave,
        }
    }

    /// Number of slices this decoder spreads addresses over.
    #[must_use]
    pub fn slices(&self) -> usize {
        self.slices
    }

    /// The slice index `line_addr` decodes to.
    #[must_use]
    pub fn slice_of(&self, line_addr: u64) -> usize {
        let index = line_addr / self.line_bytes;
        let folded = match self.interleave {
            InterleaveMode::Line => index,
            InterleaveMode::XorFold => index ^ (index >> 16) ^ (index >> 32),
        };
        (folded % self.slices as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_mode_reproduces_the_historical_modulo() {
        let d = AddressDecoder::new(128, 32, InterleaveMode::Line);
        for line_addr in (0..4096u64).map(|i| i * 128) {
            assert_eq!(d.slice_of(line_addr), ((line_addr / 128) % 32) as usize);
        }
    }

    #[test]
    fn xor_fold_spreads_large_power_of_two_strides() {
        // A 2^23-byte stride has identical low line-index bits, so Line maps
        // every access to one slice; XorFold must spread them.
        let line = AddressDecoder::new(128, 32, InterleaveMode::Line);
        let xor = AddressDecoder::new(128, 32, InterleaveMode::XorFold);
        let addrs: Vec<u64> = (0..64u64).map(|i| i << 23).collect();
        let line_slices: std::collections::HashSet<usize> =
            addrs.iter().map(|&a| line.slice_of(a)).collect();
        let xor_slices: std::collections::HashSet<usize> =
            addrs.iter().map(|&a| xor.slice_of(a)).collect();
        assert_eq!(line_slices.len(), 1, "line interleave camps on one slice");
        assert!(xor_slices.len() > 8, "xor fold spreads the stride");
    }

    #[test]
    fn decoder_is_total_and_in_range() {
        let d = AddressDecoder::new(128, 7, InterleaveMode::XorFold);
        for addr in [0, 1, 127, 128, u64::MAX, u64::MAX - 12345] {
            assert!(d.slice_of(addr) < 7);
        }
        // Degenerate configurations clamp instead of dividing by zero.
        let d0 = AddressDecoder::new(0, 0, InterleaveMode::Line);
        assert_eq!(d0.slice_of(u64::MAX), 0);
    }

    #[test]
    fn interleave_labels_round_trip() {
        for mode in [InterleaveMode::Line, InterleaveMode::XorFold] {
            assert_eq!(mode.label().parse::<InterleaveMode>().unwrap(), mode);
        }
        assert!("diagonal".parse::<InterleaveMode>().is_err());
    }
}
