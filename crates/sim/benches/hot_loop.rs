//! Inner-loop benchmarks for the simulator core: single-SM tick, multi-SM
//! lock-step cycle, and the scoreboard-check batch, each timed on both the
//! fast engine and the reference oracle so the speedup is visible in one run.

use criterion::{criterion_group, criterion_main, Criterion};
use ltrf_isa::{ArchReg, Kernel, KernelBuilder, LaunchConfig, Opcode};
use ltrf_sim::{
    simulate_gpu_with, simulate_with, DirectRegisterFile, EngineKind, GpuConfig, RegisterFileModel,
    SimWorkload, SmConfig,
};

/// A loopy kernel mixing ALU dependency chains with global loads, so the
/// issue path, scoreboard, memory hierarchy, and two-level scheduler all see
/// traffic.
fn mixed_kernel(warps_per_block: u32, blocks: u32) -> Kernel {
    let mut b = KernelBuilder::new("bench-mixed", 24);
    let entry = b.entry_block();
    let body = b.add_block();
    let exit = b.add_block();
    for i in 0..8 {
        b.push(entry, Opcode::Mov, Some(ArchReg::new(i)), &[]);
    }
    b.jump(entry, body);
    b.push(
        body,
        Opcode::LoadGlobal,
        Some(ArchReg::new(8)),
        &[ArchReg::new(0)],
    );
    for i in 0..10 {
        b.push(
            body,
            Opcode::FFma,
            Some(ArchReg::new(9 + (i % 8))),
            &[ArchReg::new(8), ArchReg::new(i % 8)],
        );
    }
    b.loop_branch(body, body, exit, 24);
    b.push(
        exit,
        Opcode::StoreGlobal,
        None,
        &[ArchReg::new(0), ArchReg::new(9)],
    );
    b.exit(exit);
    b.launch(LaunchConfig::new(warps_per_block, blocks, 0));
    b.build().unwrap()
}

/// A pure dependency-chain kernel: every instruction reads the previous
/// destination, so the scoreboard check runs hot on every issue attempt.
fn scoreboard_kernel(warps: u32) -> Kernel {
    let mut b = KernelBuilder::new("bench-scoreboard", 16);
    let e = b.entry_block();
    for i in 0..200usize {
        b.push(
            e,
            Opcode::FAlu,
            Some(ArchReg::new(((i + 1) % 12) as u8)),
            &[ArchReg::new((i % 12) as u8)],
        );
    }
    b.exit(e);
    b.launch(LaunchConfig::new(warps, 1, 0));
    b.build().unwrap()
}

fn bench_both(c: &mut Criterion, group: &str, mut run: impl FnMut(EngineKind) -> u64) {
    let mut g = c.benchmark_group(group);
    g.sample_size(10);
    g.bench_function("fast", |b| b.iter(|| run(EngineKind::Fast)));
    g.bench_function("reference", |b| b.iter(|| run(EngineKind::Reference)));
    g.finish();
}

fn single_sm_tick(c: &mut Criterion) {
    let workload = SimWorkload::new(mixed_kernel(8, 8)).with_seed(17);
    let config = SmConfig::default();
    bench_both(c, "single_sm_tick", |kind| {
        let mut rf = DirectRegisterFile::new(config.regfile);
        simulate_with(&workload, &config, &mut rf, kind).cycles
    });
}

fn multi_sm_lockstep(c: &mut Criterion) {
    let workload = SimWorkload::new(mixed_kernel(8, 16)).with_seed(17);
    let config = GpuConfig {
        sm_count: 4,
        ..GpuConfig::default()
    };
    bench_both(c, "multi_sm_lockstep", |kind| {
        let mut rfs: Vec<Box<dyn RegisterFileModel>> = (0..4)
            .map(|_| Box::new(DirectRegisterFile::new(config.sm.regfile)) as _)
            .collect();
        simulate_gpu_with(&workload, &config, &mut rfs, kind).cycles
    });
}

fn scoreboard_batch(c: &mut Criterion) {
    let workload = SimWorkload::new(scoreboard_kernel(32)).with_seed(17);
    let config = SmConfig::default();
    bench_both(c, "scoreboard_batch", |kind| {
        let mut rf = DirectRegisterFile::new(config.regfile);
        simulate_with(&workload, &config, &mut rf, kind).cycles
    });
}

criterion_group!(
    hot_loop,
    single_sm_tick,
    multi_sm_lockstep,
    scoreboard_batch
);
criterion_main!(hot_loop);
