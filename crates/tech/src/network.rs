//! Operand-delivery network models.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Topology of the network connecting register-file banks to operand
/// collectors.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum NetworkTopology {
    /// Full crossbar with wide (1024-bit) links — the conventional design.
    Crossbar,
    /// Flattened butterfly, used by the paper when the bank count grows 8×
    /// to keep wiring overhead manageable.
    FlattenedButterfly,
}

impl NetworkTopology {
    /// Additional traversal latency relative to the baseline 16-bank
    /// crossbar, in baseline register-file access units.
    #[must_use]
    pub fn traversal_latency_factor(self, bank_count_factor: f64) -> f64 {
        match self {
            // A crossbar's traversal latency is essentially flat until the
            // port count explodes; wiring for more banks adds a small delay.
            NetworkTopology::Crossbar => 0.05 * bank_count_factor.max(1.0).log2(),
            // The flattened butterfly trades hop count for wiring: each
            // doubling of the bank count adds roughly one sixth of a baseline
            // access of traversal time.
            NetworkTopology::FlattenedButterfly => {
                0.5 + 0.16 * (bank_count_factor.max(1.0).log2() - 3.0).max(0.0)
            }
        }
    }

    /// Relative area of the network versus the baseline crossbar, as a
    /// function of the number of ports (bank count factor) and link width
    /// factor.
    #[must_use]
    pub fn area_factor(self, bank_count_factor: f64, link_width_factor: f64) -> f64 {
        match self {
            // Crossbar area grows quadratically with port count and linearly
            // with link width.
            NetworkTopology::Crossbar => bank_count_factor * bank_count_factor * link_width_factor,
            // The flattened butterfly grows roughly linearly with ports and
            // stays well below the crossbar at high port counts.
            NetworkTopology::FlattenedButterfly => 0.5 * bank_count_factor * link_width_factor,
        }
    }

    /// Relative dynamic energy per traversal versus the baseline crossbar.
    #[must_use]
    pub fn energy_factor(self, bank_count_factor: f64) -> f64 {
        match self {
            NetworkTopology::Crossbar => bank_count_factor.max(1.0).sqrt(),
            NetworkTopology::FlattenedButterfly => 0.8 * bank_count_factor.max(1.0).sqrt(),
        }
    }

    /// Short name as used in the paper's Table 2.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            NetworkTopology::Crossbar => "Crossbar",
            NetworkTopology::FlattenedButterfly => "F. Butterfly",
        }
    }
}

impl fmt::Display for NetworkTopology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_crossbar_has_negligible_extra_latency() {
        let l = NetworkTopology::Crossbar.traversal_latency_factor(1.0);
        assert!(l.abs() < 1e-9);
    }

    #[test]
    fn butterfly_beats_crossbar_area_at_high_port_counts() {
        let xbar = NetworkTopology::Crossbar.area_factor(8.0, 1.0);
        let fb = NetworkTopology::FlattenedButterfly.area_factor(8.0, 1.0);
        assert!(
            fb < xbar,
            "flattened butterfly should be smaller at 8x banks"
        );
    }

    #[test]
    fn butterfly_costs_latency() {
        let fb = NetworkTopology::FlattenedButterfly.traversal_latency_factor(8.0);
        assert!(fb >= 0.5);
        let xbar = NetworkTopology::Crossbar.traversal_latency_factor(8.0);
        assert!(fb > xbar);
    }

    #[test]
    fn names_match_table2() {
        assert_eq!(NetworkTopology::Crossbar.to_string(), "Crossbar");
        assert_eq!(
            NetworkTopology::FlattenedButterfly.to_string(),
            "F. Butterfly"
        );
    }

    #[test]
    fn energy_grows_with_ports() {
        for topo in [
            NetworkTopology::Crossbar,
            NetworkTopology::FlattenedButterfly,
        ] {
            assert!(topo.energy_factor(8.0) > topo.energy_factor(1.0));
        }
    }
}
