//! First-order analytical register-file bank model.
//!
//! This plays the role of CACTI/NVSim in the original study: given a cell
//! technology, a bank size, a bank count, and a network topology, it produces
//! relative latency, area, power, and derived capacity-efficiency figures.
//! All outputs are normalized to the baseline design (16 banks × 16 KB of
//! high-performance SRAM behind a full crossbar), matching the normalization
//! of the paper's Table 2.
//!
//! The model is deliberately simple — wordline/bitline delay grows with the
//! square root of the bank size, leakage grows with capacity, dynamic energy
//! grows with bank size and technology — but it reproduces the *ordering* and
//! rough magnitudes of the calibrated design points in [`crate::configs`],
//! which is what the rest of the reproduction depends on.

use serde::{Deserialize, Serialize};

use crate::{CellTechnology, NetworkTopology};

/// Relative (baseline-normalized) estimates produced by the bank model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BankEstimate {
    /// Total capacity relative to the 256 KB baseline.
    pub capacity_factor: f64,
    /// Total register-file area relative to the baseline.
    pub area_factor: f64,
    /// Total register-file power (dynamic + leakage at nominal activity)
    /// relative to the baseline.
    pub power_factor: f64,
    /// Average register access latency relative to the baseline, including
    /// the operand network traversal.
    pub latency_factor: f64,
}

impl BankEstimate {
    /// Capacity per unit area, relative to the baseline.
    #[must_use]
    pub fn capacity_per_area(&self) -> f64 {
        self.capacity_factor / self.area_factor
    }

    /// Capacity per unit power, relative to the baseline.
    #[must_use]
    pub fn capacity_per_power(&self) -> f64 {
        self.capacity_factor / self.power_factor
    }
}

/// Analytical model of a banked register file.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BankModel {
    /// Cell technology of the register file.
    pub technology: CellTechnology,
    /// Number of banks relative to the 16-bank baseline.
    pub bank_count_factor: f64,
    /// Size of each bank relative to the 16 KB baseline bank.
    pub bank_size_factor: f64,
    /// Operand-delivery network topology.
    pub network: NetworkTopology,
}

impl BankModel {
    /// The baseline design: 16 banks × 16 KB HP SRAM behind a crossbar.
    #[must_use]
    pub const fn baseline() -> Self {
        BankModel {
            technology: CellTechnology::HpSram,
            bank_count_factor: 1.0,
            bank_size_factor: 1.0,
            network: NetworkTopology::Crossbar,
        }
    }

    /// Creates a model.
    #[must_use]
    pub const fn new(
        technology: CellTechnology,
        bank_count_factor: f64,
        bank_size_factor: f64,
        network: NetworkTopology,
    ) -> Self {
        BankModel {
            technology,
            bank_count_factor,
            bank_size_factor,
            network,
        }
    }

    /// Total capacity relative to the baseline.
    #[must_use]
    pub fn capacity_factor(&self) -> f64 {
        self.bank_count_factor * self.bank_size_factor
    }

    /// Produces the relative latency/area/power estimate for this design.
    #[must_use]
    pub fn estimate(&self) -> BankEstimate {
        let capacity = self.capacity_factor();
        let tech = self.technology;

        // --- Latency -------------------------------------------------------
        // Bank access time grows with the square root of the bank size
        // (longer bitlines/wordlines); the cell technology contributes a
        // multiplicative factor; the network adds traversal time. Queueing
        // from bank conflicts is modelled in the timing simulator, not here.
        let size_latency = self.bank_size_factor.max(1e-9).sqrt().max(1.0);
        let cell_latency = tech.relative_cell_latency();
        let network_latency = self
            .network
            .traversal_latency_factor(self.bank_count_factor);
        let latency_factor = cell_latency * (0.75 + 0.25 * size_latency) + network_latency;

        // --- Area ----------------------------------------------------------
        // Cell array area scales with capacity × per-bit area; peripheral
        // circuitry adds ~5% per bank; the network contributes about 10% of
        // the baseline area and scales with its topology.
        let array_area = capacity * tech.relative_cell_area();
        let periphery_area = 0.05 * self.bank_count_factor;
        let network_area = 0.10 * self.network.area_factor(self.bank_count_factor, 1.0);
        let baseline_area = 1.0 + 0.05 + 0.10;
        let area_factor = (array_area + periphery_area + network_area) / baseline_area;

        // --- Power ---------------------------------------------------------
        // At nominal activity, roughly half the baseline register-file power
        // is leakage and half is dynamic access energy.
        let leakage = 0.5 * capacity * tech.relative_leakage();
        let dynamic = 0.5
            * tech.relative_access_energy()
            * (0.75 + 0.25 * size_latency)
            * self.network.energy_factor(self.bank_count_factor)
            / self.network.energy_factor(1.0);
        let power_factor = leakage + dynamic;

        BankEstimate {
            capacity_factor: capacity,
            area_factor,
            power_factor,
            latency_factor,
        }
    }
}

impl Default for BankModel {
    fn default() -> Self {
        BankModel::baseline()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_normalizes_to_one() {
        let e = BankModel::baseline().estimate();
        assert!((e.capacity_factor - 1.0).abs() < 1e-9);
        assert!(
            (e.latency_factor - 1.0).abs() < 0.05,
            "latency {}",
            e.latency_factor
        );
        assert!((e.area_factor - 1.0).abs() < 0.05);
        assert!((e.power_factor - 1.0).abs() < 0.05);
        assert!((e.capacity_per_area() - 1.0).abs() < 0.06);
        assert!((e.capacity_per_power() - 1.0).abs() < 0.06);
    }

    #[test]
    fn bigger_banks_are_slower() {
        let small = BankModel::baseline().estimate();
        let big =
            BankModel::new(CellTechnology::HpSram, 1.0, 8.0, NetworkTopology::Crossbar).estimate();
        assert!(big.latency_factor > small.latency_factor);
        assert!(big.capacity_factor > small.capacity_factor);
        assert!(big.power_factor > small.power_factor);
    }

    #[test]
    fn dwm_is_small_cheap_and_slow() {
        let dwm = BankModel::new(
            CellTechnology::Dwm,
            8.0,
            1.0,
            NetworkTopology::FlattenedButterfly,
        )
        .estimate();
        assert!(dwm.capacity_factor >= 7.9);
        assert!(
            dwm.area_factor < 1.0,
            "8x DWM should be smaller than baseline"
        );
        assert!(
            dwm.power_factor < 1.0,
            "8x DWM should use less power than baseline"
        );
        assert!(dwm.latency_factor > 4.0, "DWM should be much slower");
    }

    #[test]
    fn tfet_power_is_roughly_flat_at_8x_capacity() {
        let tfet = BankModel::new(
            CellTechnology::TfetSram,
            8.0,
            1.0,
            NetworkTopology::FlattenedButterfly,
        )
        .estimate();
        assert!(tfet.capacity_factor >= 7.9);
        assert!(
            tfet.power_factor < 1.5,
            "TFET at 8x should stay near baseline power"
        );
        assert!(tfet.latency_factor > 3.0);
    }

    #[test]
    fn estimates_are_monotone_in_technology_latency() {
        let mut last = 0.0;
        for &t in CellTechnology::all() {
            let e = BankModel::new(t, 8.0, 1.0, NetworkTopology::FlattenedButterfly).estimate();
            assert!(e.latency_factor >= last || t == CellTechnology::HpSram);
            last = e.latency_factor;
        }
    }
}
