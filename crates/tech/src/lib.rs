//! # ltrf-tech
//!
//! Memory-technology timing, area, and power models for the LTRF
//! reproduction.
//!
//! The paper derives its register-file design points (Table 2) from CACTI,
//! NVSim, and GPUWattch. Those tools are not available here, so this crate
//! plays their role:
//!
//! * [`technology`] describes the four cell technologies the paper explores
//!   (high-performance SRAM, low-standby-power SRAM, TFET SRAM, and
//!   domain-wall memory) with relative density, access-energy, leakage, and
//!   latency parameters.
//! * [`bank`] is a first-order analytical model of a register-file bank that
//!   combines a cell technology with a bank size and produces latency, area,
//!   and energy estimates.
//! * [`network`] models the operand-delivery network (full crossbar vs.
//!   flattened butterfly).
//! * [`configs`] exposes the paper's seven Table 2 register-file
//!   configurations as calibrated design points; the analytical model is
//!   sanity-checked against them but experiments use the calibrated values,
//!   exactly as the paper uses CACTI/NVSim outputs.
//! * [`power`] converts access counts gathered by the simulator into
//!   register-file energy and power (the Figure 10 experiment).
//! * [`generations`] records the on-chip memory breakdown of the four GPU
//!   generations shown in Figure 2.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod bank;
pub mod configs;
pub mod generations;
pub mod network;
pub mod power;
pub mod technology;

pub use bank::BankModel;
pub use configs::{RegFileConfig, RegFileConfigId};
pub use network::NetworkTopology;
pub use power::{AccessCounts, PowerBreakdown, PowerParams, RegFilePowerModel};
pub use technology::CellTechnology;
