//! Memory cell technologies and their first-order electrical parameters.

use std::fmt;

use serde::{Deserialize, Serialize};

/// The four register-file cell technologies explored by the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CellTechnology {
    /// High-performance CMOS SRAM — the baseline GPU register-file cell.
    HpSram,
    /// Low-standby-power CMOS SRAM — slower, far lower leakage.
    LstpSram,
    /// Tunnel-FET SRAM — very low power, considerably slower.
    TfetSram,
    /// Domain-wall (racetrack) memory — extremely dense and low power, but
    /// with long shift-dominated access latency.
    Dwm,
}

impl CellTechnology {
    /// All technologies, in the order they appear in Table 2.
    #[must_use]
    pub const fn all() -> &'static [CellTechnology] {
        &[
            CellTechnology::HpSram,
            CellTechnology::LstpSram,
            CellTechnology::TfetSram,
            CellTechnology::Dwm,
        ]
    }

    /// Relative cell area (bits per unit area, inverse), normalized to
    /// high-performance SRAM. Smaller is denser.
    #[must_use]
    pub const fn relative_cell_area(self) -> f64 {
        match self {
            CellTechnology::HpSram => 1.0,
            CellTechnology::LstpSram => 1.0,
            CellTechnology::TfetSram => 1.0,
            // DWM stores many bits per track: the paper's config #7 packs an
            // 8x-capacity register file into 0.25x the baseline area, i.e.
            // 1/32 of the per-bit area.
            CellTechnology::Dwm => 1.0 / 32.0,
        }
    }

    /// Relative dynamic energy per access, normalized to HP SRAM.
    #[must_use]
    pub const fn relative_access_energy(self) -> f64 {
        match self {
            CellTechnology::HpSram => 1.0,
            CellTechnology::LstpSram => 0.55,
            CellTechnology::TfetSram => 0.30,
            CellTechnology::Dwm => 0.40,
        }
    }

    /// Relative leakage power per bit, normalized to HP SRAM.
    #[must_use]
    pub const fn relative_leakage(self) -> f64 {
        match self {
            CellTechnology::HpSram => 1.0,
            CellTechnology::LstpSram => 0.28,
            CellTechnology::TfetSram => 0.018,
            CellTechnology::Dwm => 0.012,
        }
    }

    /// Relative raw cell access latency, normalized to HP SRAM.
    #[must_use]
    pub const fn relative_cell_latency(self) -> f64 {
        match self {
            CellTechnology::HpSram => 1.0,
            CellTechnology::LstpSram => 1.9,
            CellTechnology::TfetSram => 3.6,
            CellTechnology::Dwm => 4.3,
        }
    }

    /// Short human-readable name as used in the paper's tables.
    #[must_use]
    pub const fn name(self) -> &'static str {
        match self {
            CellTechnology::HpSram => "HP SRAM",
            CellTechnology::LstpSram => "LSTP SRAM",
            CellTechnology::TfetSram => "TFET SRAM",
            CellTechnology::Dwm => "DWM",
        }
    }
}

impl fmt::Display for CellTechnology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_lists_every_technology() {
        assert_eq!(CellTechnology::all().len(), 4);
    }

    #[test]
    fn hp_sram_is_the_normalization_point() {
        let hp = CellTechnology::HpSram;
        assert_eq!(hp.relative_cell_area(), 1.0);
        assert_eq!(hp.relative_access_energy(), 1.0);
        assert_eq!(hp.relative_leakage(), 1.0);
        assert_eq!(hp.relative_cell_latency(), 1.0);
    }

    #[test]
    fn denser_technologies_are_slower() {
        for &t in CellTechnology::all() {
            if t != CellTechnology::HpSram {
                assert!(
                    t.relative_cell_latency() > 1.0,
                    "{t} should be slower than HP SRAM"
                );
                assert!(
                    t.relative_leakage() < 1.0,
                    "{t} should leak less than HP SRAM"
                );
            }
        }
    }

    #[test]
    fn dwm_is_the_densest() {
        assert!(CellTechnology::Dwm.relative_cell_area() < 0.1);
        assert_eq!(CellTechnology::Dwm.name(), "DWM");
        assert_eq!(CellTechnology::Dwm.to_string(), "DWM");
    }
}
