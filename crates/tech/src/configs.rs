//! The seven register-file design points of the paper's Table 2.
//!
//! The paper obtains these numbers from CACTI and NVSim and uses them to
//! drive every performance and power experiment. We treat them as calibrated
//! design points: the analytical [`crate::BankModel`] is sanity-checked
//! against them (same ordering, same ballpark), while the experiments consume
//! the calibrated values directly, exactly as the original study consumes the
//! CACTI/NVSim outputs.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{BankModel, CellTechnology, NetworkTopology};

/// Identifier of one of the seven Table 2 configurations.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct RegFileConfigId(pub u8);

impl fmt::Display for RegFileConfigId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// One register-file design point: organization plus its calibrated relative
/// capacity, area, power, and latency.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RegFileConfig {
    /// Configuration number as used in the paper (1–7).
    pub id: RegFileConfigId,
    /// Cell technology.
    pub technology: CellTechnology,
    /// Number of banks relative to the 16-bank baseline.
    pub bank_count_factor: f64,
    /// Bank size relative to the 16 KB baseline bank.
    pub bank_size_factor: f64,
    /// Operand network topology.
    pub network: NetworkTopology,
    /// Total capacity relative to the 256 KB baseline.
    pub capacity_factor: f64,
    /// Area relative to the baseline register file.
    pub area_factor: f64,
    /// Power relative to the baseline register file at nominal activity.
    pub power_factor: f64,
    /// Average access latency relative to the baseline register file
    /// (including queueing measured by the original study's simulator).
    pub latency_factor: f64,
}

impl RegFileConfig {
    /// Capacity per unit area, relative to the baseline.
    #[must_use]
    pub fn capacity_per_area(&self) -> f64 {
        self.capacity_factor / self.area_factor
    }

    /// Capacity per unit power, relative to the baseline.
    #[must_use]
    pub fn capacity_per_power(&self) -> f64 {
        self.capacity_factor / self.power_factor
    }

    /// The corresponding analytical model (without calibration).
    #[must_use]
    pub fn bank_model(&self) -> BankModel {
        BankModel::new(
            self.technology,
            self.bank_count_factor,
            self.bank_size_factor,
            self.network,
        )
    }

    /// Total register-file capacity in kilobytes, assuming the 256 KB
    /// baseline of the paper's Maxwell-like SM.
    #[must_use]
    pub fn capacity_kib(&self) -> f64 {
        256.0 * self.capacity_factor
    }

    /// Returns the baseline configuration (#1).
    #[must_use]
    pub fn baseline() -> Self {
        TABLE2[0]
    }

    /// Returns configuration `id` (1–7) from Table 2.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not in `1..=7`.
    #[must_use]
    pub fn from_table(id: u8) -> Self {
        assert!((1..=7).contains(&id), "Table 2 has configurations 1..=7");
        TABLE2[(id - 1) as usize]
    }

    /// All seven Table 2 configurations, in order.
    #[must_use]
    pub fn table2() -> &'static [RegFileConfig] {
        &TABLE2
    }
}

/// Calibrated Table 2 design points.
static TABLE2: [RegFileConfig; 7] = [
    RegFileConfig {
        id: RegFileConfigId(1),
        technology: CellTechnology::HpSram,
        bank_count_factor: 1.0,
        bank_size_factor: 1.0,
        network: NetworkTopology::Crossbar,
        capacity_factor: 1.0,
        area_factor: 1.0,
        power_factor: 1.0,
        latency_factor: 1.0,
    },
    RegFileConfig {
        id: RegFileConfigId(2),
        technology: CellTechnology::HpSram,
        bank_count_factor: 1.0,
        bank_size_factor: 8.0,
        network: NetworkTopology::Crossbar,
        capacity_factor: 8.0,
        area_factor: 8.0,
        power_factor: 8.0,
        latency_factor: 1.25,
    },
    RegFileConfig {
        id: RegFileConfigId(3),
        technology: CellTechnology::HpSram,
        bank_count_factor: 8.0,
        bank_size_factor: 1.0,
        network: NetworkTopology::FlattenedButterfly,
        capacity_factor: 8.0,
        area_factor: 8.0,
        power_factor: 8.0,
        latency_factor: 1.5,
    },
    RegFileConfig {
        id: RegFileConfigId(4),
        technology: CellTechnology::LstpSram,
        bank_count_factor: 1.0,
        bank_size_factor: 8.0,
        network: NetworkTopology::Crossbar,
        capacity_factor: 8.0,
        area_factor: 8.0,
        power_factor: 3.2,
        latency_factor: 1.6,
    },
    RegFileConfig {
        id: RegFileConfigId(5),
        technology: CellTechnology::LstpSram,
        bank_count_factor: 8.0,
        bank_size_factor: 1.0,
        network: NetworkTopology::FlattenedButterfly,
        capacity_factor: 8.0,
        area_factor: 8.0,
        power_factor: 3.2,
        latency_factor: 2.8,
    },
    RegFileConfig {
        id: RegFileConfigId(6),
        technology: CellTechnology::TfetSram,
        bank_count_factor: 8.0,
        bank_size_factor: 1.0,
        network: NetworkTopology::FlattenedButterfly,
        capacity_factor: 8.0,
        area_factor: 8.0,
        power_factor: 1.05,
        latency_factor: 5.3,
    },
    RegFileConfig {
        id: RegFileConfigId(7),
        technology: CellTechnology::Dwm,
        bank_count_factor: 8.0,
        bank_size_factor: 1.0,
        network: NetworkTopology::FlattenedButterfly,
        capacity_factor: 8.0,
        area_factor: 0.25,
        power_factor: 0.65,
        latency_factor: 6.3,
    },
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_has_seven_configs_with_dense_ids() {
        let table = RegFileConfig::table2();
        assert_eq!(table.len(), 7);
        for (i, c) in table.iter().enumerate() {
            assert_eq!(c.id.0 as usize, i + 1);
        }
    }

    #[test]
    fn baseline_is_config_one() {
        let b = RegFileConfig::baseline();
        assert_eq!(b.id, RegFileConfigId(1));
        assert_eq!(b.capacity_factor, 1.0);
        assert_eq!(b.latency_factor, 1.0);
        assert_eq!(b.capacity_kib(), 256.0);
    }

    #[test]
    fn derived_efficiency_matches_paper() {
        // Config #7 (DWM): 32x capacity/area and ~12x capacity/power.
        let c7 = RegFileConfig::from_table(7);
        assert!((c7.capacity_per_area() - 32.0).abs() < 1e-9);
        assert!((c7.capacity_per_power() - 12.3).abs() < 0.5);
        // Config #6 (TFET): ~7.6x capacity/power.
        let c6 = RegFileConfig::from_table(6);
        assert!((c6.capacity_per_power() - 7.6).abs() < 0.1);
    }

    #[test]
    #[should_panic(expected = "1..=7")]
    fn from_table_rejects_bad_ids() {
        let _ = RegFileConfig::from_table(0);
    }

    #[test]
    fn latency_ordering_matches_paper() {
        let latencies: Vec<f64> = RegFileConfig::table2()
            .iter()
            .map(|c| c.latency_factor)
            .collect();
        let mut sorted = latencies.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        assert_eq!(
            latencies, sorted,
            "Table 2 latency increases with config id"
        );
        assert_eq!(latencies[6], 6.3);
    }

    #[test]
    fn analytical_model_tracks_calibrated_points() {
        // The analytical model should reproduce the calibrated ordering of
        // latency and stay within a factor of two on each axis.
        for config in RegFileConfig::table2() {
            let est = config.bank_model().estimate();
            assert!(
                est.latency_factor / config.latency_factor < 2.0
                    && config.latency_factor / est.latency_factor < 2.0,
                "latency estimate for {} too far off: {} vs {}",
                config.id,
                est.latency_factor,
                config.latency_factor
            );
            assert!(
                est.capacity_factor == config.capacity_factor,
                "capacity must match exactly for {}",
                config.id
            );
            assert!(
                est.power_factor / config.power_factor < 2.2
                    && config.power_factor / est.power_factor < 2.2,
                "power estimate for {} too far off: {} vs {}",
                config.id,
                est.power_factor,
                config.power_factor
            );
        }
    }
}
