//! Register-file energy and power accounting (the GPUWattch role).
//!
//! The Figure 10 experiment compares the register-file power of RFC, LTRF,
//! and LTRF+ on the DWM-based configuration #7, normalized to the baseline
//! SRAM register file. Power has two components:
//!
//! * **dynamic** energy: per-access energy of the main register file (MRF),
//!   the register-file cache (RFC), and the Warp Control Block (WCB),
//!   multiplied by the access counts the timing simulator gathers, and
//! * **static** (leakage) power: proportional to each structure's capacity
//!   and its technology's leakage.
//!
//! The absolute values are first-order estimates; all experiments report
//! results *normalized to the baseline organization*, which is how the paper
//! presents them as well.

use serde::{Deserialize, Serialize};

use crate::{CellTechnology, RegFileConfig};

/// Access counts gathered by the simulator for one run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct AccessCounts {
    /// Warp-wide (1024-bit) reads served by the main register file.
    pub mrf_reads: u64,
    /// Warp-wide writes into the main register file.
    pub mrf_writes: u64,
    /// Warp-wide reads served by the register-file cache.
    pub rfc_reads: u64,
    /// Warp-wide writes into the register-file cache.
    pub rfc_writes: u64,
    /// Warp Control Block lookups (register-cache address table accesses).
    pub wcb_accesses: u64,
    /// Total simulated cycles.
    pub cycles: u64,
}

impl AccessCounts {
    /// Sum of all main-register-file accesses.
    #[must_use]
    pub const fn mrf_total(&self) -> u64 {
        self.mrf_reads + self.mrf_writes
    }

    /// Sum of all register-file-cache accesses.
    #[must_use]
    pub const fn rfc_total(&self) -> u64 {
        self.rfc_reads + self.rfc_writes
    }
}

/// Energy/power breakdown for one run, in picojoules and milliwatts.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct PowerBreakdown {
    /// Dynamic energy spent in the main register file, in pJ.
    pub mrf_dynamic_pj: f64,
    /// Dynamic energy spent in the register-file cache, in pJ.
    pub rfc_dynamic_pj: f64,
    /// Dynamic energy spent in the WCB and allocation units, in pJ.
    pub wcb_dynamic_pj: f64,
    /// Leakage energy over the run, in pJ.
    pub leakage_pj: f64,
    /// Average power over the run, in mW.
    pub average_power_mw: f64,
}

impl PowerBreakdown {
    /// Total energy, in pJ.
    #[must_use]
    pub fn total_pj(&self) -> f64 {
        self.mrf_dynamic_pj + self.rfc_dynamic_pj + self.wcb_dynamic_pj + self.leakage_pj
    }
}

/// Converts access counts into energy/power for a given register-file design.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RegFilePowerModel {
    /// Dynamic energy per warp-wide MRF read, in pJ.
    pub mrf_read_pj: f64,
    /// Dynamic energy per warp-wide MRF write, in pJ.
    pub mrf_write_pj: f64,
    /// Dynamic energy per warp-wide RFC access, in pJ.
    pub rfc_access_pj: f64,
    /// Dynamic energy per WCB lookup, in pJ.
    pub wcb_access_pj: f64,
    /// Leakage power of the MRF, in mW.
    pub mrf_leakage_mw: f64,
    /// Leakage power of the RFC + WCB structures, in mW.
    pub cache_leakage_mw: f64,
    /// Core clock frequency, in MHz (used to convert cycles to time).
    pub clock_mhz: f64,
}

/// The calibration knobs of the register-file power model.
///
/// The paper derives its energy numbers from GPUWattch; this reproduction
/// uses first-order constants instead, and these are those constants, made
/// sweepable. The `sweep power` subcommand exposes them as CLI flags
/// (`--access-energy-pj`, `--leakage-mw-per-kb`, `--dwm-write-penalty`) so
/// the power artifacts can be re-derived under a different calibration;
/// because the parameters live inside `ltrf-core`'s `ExperimentConfig`,
/// they are part of every sweep point's content-addressed cache key — two
/// runs under different calibrations can never alias each other's cached
/// results.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PowerParams {
    /// Per-access energy of a warp-wide (128-byte) HP-SRAM register-file
    /// read at 16 KB bank size, in pJ (the dynamic-energy anchor every
    /// other access energy is scaled from).
    pub base_access_pj: f64,
    /// HP-SRAM leakage per KB of register-file capacity, in mW (the
    /// static-power anchor).
    pub base_leakage_mw_per_kb: f64,
    /// Energy penalty of a DWM write relative to a DWM read (shift + write).
    pub dwm_write_penalty: f64,
}

impl Default for PowerParams {
    fn default() -> Self {
        PowerParams {
            base_access_pj: 50.0,
            base_leakage_mw_per_kb: 0.16,
            dwm_write_penalty: 1.4,
        }
    }
}

impl PowerParams {
    /// Validates the calibration: every knob must be positive and finite.
    ///
    /// # Errors
    ///
    /// Returns a human-readable complaint naming the offending field (CLI
    /// layers map field names to their flags).
    pub fn validate(&self) -> Result<(), String> {
        let checks = [
            ("base_access_pj", self.base_access_pj),
            ("base_leakage_mw_per_kb", self.base_leakage_mw_per_kb),
            ("dwm_write_penalty", self.dwm_write_penalty),
        ];
        for (name, value) in checks {
            if !value.is_finite() || value <= 0.0 {
                return Err(format!("{name} must be positive and finite, got {value}"));
            }
        }
        Ok(())
    }
}

impl RegFilePowerModel {
    /// Builds a power model for a main register file described by a Table 2
    /// configuration, with an optional register-file cache of `rfc_kib`
    /// kilobytes (pass 0 for organizations without a cache), under the
    /// default [`PowerParams`] calibration.
    #[must_use]
    pub fn for_config(config: &RegFileConfig, rfc_kib: f64, clock_mhz: f64) -> Self {
        RegFilePowerModel::for_config_with(config, rfc_kib, clock_mhz, &PowerParams::default())
    }

    /// [`Self::for_config`] under an explicit [`PowerParams`] calibration
    /// (the `sweep power` entry point).
    #[must_use]
    pub fn for_config_with(
        config: &RegFileConfig,
        rfc_kib: f64,
        clock_mhz: f64,
        params: &PowerParams,
    ) -> Self {
        let tech = config.technology;
        // Access energy grows slowly with bank size (longer lines).
        let size_energy = 0.75 + 0.25 * config.bank_size_factor.max(1.0).sqrt();
        let mrf_access_pj = params.base_access_pj * tech.relative_access_energy() * size_energy;
        // DWM writes are more expensive than reads (shift + write).
        let write_penalty = if tech == CellTechnology::Dwm {
            params.dwm_write_penalty
        } else {
            1.0
        };
        let mrf_capacity_kib = config.capacity_kib();
        let mrf_leakage_mw =
            mrf_capacity_kib * params.base_leakage_mw_per_kb * tech.relative_leakage();
        // The RFC and WCB are small HP-SRAM structures.
        let rfc_access_pj = params.base_access_pj * 0.18;
        let wcb_access_pj = params.base_access_pj * 0.04;
        let cache_leakage_mw = rfc_kib * params.base_leakage_mw_per_kb * 1.1;
        RegFilePowerModel {
            mrf_read_pj: mrf_access_pj,
            mrf_write_pj: mrf_access_pj * write_penalty,
            rfc_access_pj,
            wcb_access_pj,
            mrf_leakage_mw,
            cache_leakage_mw,
            clock_mhz,
        }
    }

    /// The paper's baseline: configuration #1 with no register-file cache at
    /// the 1137 MHz core clock of the simulated Maxwell-like SM.
    #[must_use]
    pub fn baseline() -> Self {
        RegFilePowerModel::for_config(&RegFileConfig::baseline(), 0.0, 1137.0)
    }

    /// Computes the energy/power breakdown for the given access counts.
    #[must_use]
    pub fn evaluate(&self, counts: &AccessCounts) -> PowerBreakdown {
        let mrf_dynamic_pj = counts.mrf_reads as f64 * self.mrf_read_pj
            + counts.mrf_writes as f64 * self.mrf_write_pj;
        let rfc_dynamic_pj = counts.rfc_total() as f64 * self.rfc_access_pj;
        let wcb_dynamic_pj = counts.wcb_accesses as f64 * self.wcb_access_pj;
        let seconds = if self.clock_mhz > 0.0 {
            counts.cycles as f64 / (self.clock_mhz * 1e6)
        } else {
            0.0
        };
        let leakage_mw = self.mrf_leakage_mw + self.cache_leakage_mw;
        let leakage_pj = leakage_mw * 1e-3 * seconds * 1e12;
        let total_pj = mrf_dynamic_pj + rfc_dynamic_pj + wcb_dynamic_pj + leakage_pj;
        let average_power_mw = if seconds > 0.0 {
            total_pj * 1e-12 / seconds * 1e3
        } else {
            0.0
        };
        PowerBreakdown {
            mrf_dynamic_pj,
            rfc_dynamic_pj,
            wcb_dynamic_pj,
            leakage_pj,
            average_power_mw,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nominal_counts(mrf_fraction: f64) -> AccessCounts {
        // One operand-read per cycle on average over a million cycles.
        let total = 1_000_000u64;
        let mrf = (total as f64 * mrf_fraction) as u64;
        AccessCounts {
            mrf_reads: mrf * 2 / 3,
            mrf_writes: mrf / 3,
            rfc_reads: (total - mrf) * 2 / 3,
            rfc_writes: (total - mrf) / 3,
            wcb_accesses: total - mrf,
            cycles: total,
        }
    }

    #[test]
    fn baseline_power_is_positive_and_dominated_by_mrf() {
        let model = RegFilePowerModel::baseline();
        let counts = nominal_counts(1.0);
        let breakdown = model.evaluate(&counts);
        assert!(breakdown.average_power_mw > 0.0);
        assert!(breakdown.mrf_dynamic_pj > breakdown.rfc_dynamic_pj);
        assert!(breakdown.total_pj() > breakdown.leakage_pj);
    }

    #[test]
    fn caching_reduces_power_on_config7() {
        // All accesses to the DWM MRF vs. 80% filtered by a 16 KB RFC.
        let model = RegFilePowerModel::for_config(&RegFileConfig::from_table(7), 16.0, 1137.0);
        let uncached = model.evaluate(&nominal_counts(1.0));
        let cached = model.evaluate(&nominal_counts(0.2));
        assert!(cached.average_power_mw < uncached.average_power_mw);
    }

    #[test]
    fn config7_with_cache_beats_sram_baseline() {
        // The headline claim: an 8x DWM register file behind an effective
        // cache consumes less power than the 256 KB SRAM baseline.
        let baseline = RegFilePowerModel::baseline().evaluate(&nominal_counts(1.0));
        let dwm_model = RegFilePowerModel::for_config(&RegFileConfig::from_table(7), 16.0, 1137.0);
        let dwm = dwm_model.evaluate(&nominal_counts(0.2));
        let ratio = dwm.average_power_mw / baseline.average_power_mw;
        assert!(
            ratio < 0.85,
            "DWM + cache should clearly reduce power, got ratio {ratio}"
        );
        assert!(
            ratio > 0.2,
            "reduction should not be implausibly large: {ratio}"
        );
    }

    #[test]
    fn access_count_helpers() {
        let c = AccessCounts {
            mrf_reads: 3,
            mrf_writes: 2,
            rfc_reads: 5,
            rfc_writes: 7,
            wcb_accesses: 1,
            cycles: 10,
        };
        assert_eq!(c.mrf_total(), 5);
        assert_eq!(c.rfc_total(), 12);
    }

    #[test]
    fn zero_cycles_has_zero_power() {
        let model = RegFilePowerModel::baseline();
        let breakdown = model.evaluate(&AccessCounts::default());
        assert_eq!(breakdown.average_power_mw, 0.0);
        assert_eq!(breakdown.total_pj(), 0.0);
    }

    #[test]
    fn power_params_scale_the_model() {
        let config = RegFileConfig::from_table(7);
        let default_model = RegFilePowerModel::for_config(&config, 16.0, 1137.0);
        // The explicit-default path is the implicit-default path.
        assert_eq!(
            default_model,
            RegFilePowerModel::for_config_with(&config, 16.0, 1137.0, &PowerParams::default())
        );
        // Doubling the access-energy anchor doubles every dynamic energy.
        let doubled = RegFilePowerModel::for_config_with(
            &config,
            16.0,
            1137.0,
            &PowerParams {
                base_access_pj: 100.0,
                ..PowerParams::default()
            },
        );
        assert!((doubled.mrf_read_pj - 2.0 * default_model.mrf_read_pj).abs() < 1e-9);
        assert!((doubled.rfc_access_pj - 2.0 * default_model.rfc_access_pj).abs() < 1e-9);
        // Leakage is untouched by the dynamic anchor.
        assert_eq!(doubled.mrf_leakage_mw, default_model.mrf_leakage_mw);
        // The write penalty applies to DWM only.
        let heavy_writes = PowerParams {
            dwm_write_penalty: 2.0,
            ..PowerParams::default()
        };
        let dwm = RegFilePowerModel::for_config_with(&config, 16.0, 1137.0, &heavy_writes);
        assert!((dwm.mrf_write_pj - 2.0 * dwm.mrf_read_pj).abs() < 1e-9);
        let sram = RegFilePowerModel::for_config_with(
            &RegFileConfig::baseline(),
            0.0,
            1137.0,
            &heavy_writes,
        );
        assert_eq!(sram.mrf_write_pj, sram.mrf_read_pj);
    }

    #[test]
    fn power_params_validate_rejects_non_positive_knobs() {
        assert!(PowerParams::default().validate().is_ok());
        let zero = PowerParams {
            base_access_pj: 0.0,
            ..PowerParams::default()
        };
        assert!(zero.validate().unwrap_err().contains("base_access_pj"));
        let nan = PowerParams {
            base_leakage_mw_per_kb: f64::NAN,
            ..PowerParams::default()
        };
        assert!(nan
            .validate()
            .unwrap_err()
            .contains("base_leakage_mw_per_kb"));
        let negative = PowerParams {
            dwm_write_penalty: -1.0,
            ..PowerParams::default()
        };
        assert!(negative
            .validate()
            .unwrap_err()
            .contains("dwm_write_penalty"));
    }

    #[test]
    fn dwm_writes_cost_more_than_reads() {
        let model = RegFilePowerModel::for_config(&RegFileConfig::from_table(7), 16.0, 1137.0);
        assert!(model.mrf_write_pj > model.mrf_read_pj);
        let sram = RegFilePowerModel::baseline();
        assert_eq!(sram.mrf_write_pj, sram.mrf_read_pj);
    }
}
