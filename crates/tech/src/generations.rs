//! On-chip memory capacity across GPU generations (the paper's Figure 2).
//!
//! The figure motivates the work by showing the register file taking an ever
//! larger share of on-chip storage from Fermi (2010) to Pascal (2016). The
//! numbers here are the public per-product totals used to regenerate that
//! figure; they are data, not a model.

use std::fmt;

use serde::Serialize;

/// One GPU generation's on-chip memory breakdown, in megabytes.
///
/// Static catalogue data (`&'static str` name), so it is serialize-only.
#[derive(Debug, Clone, Copy, PartialEq, Serialize)]
pub struct GpuGeneration {
    /// Marketing architecture name.
    pub name: &'static str,
    /// Year of introduction.
    pub year: u16,
    /// Combined L1 data cache and shared memory capacity, in MB.
    pub l1_and_shared_mb: f64,
    /// L2 cache capacity, in MB.
    pub l2_mb: f64,
    /// Total register-file capacity across all SMs, in MB.
    pub register_file_mb: f64,
}

impl GpuGeneration {
    /// Total on-chip memory, in MB.
    #[must_use]
    pub fn total_mb(&self) -> f64 {
        self.l1_and_shared_mb + self.l2_mb + self.register_file_mb
    }

    /// Fraction of on-chip memory devoted to the register file.
    #[must_use]
    pub fn register_file_share(&self) -> f64 {
        self.register_file_mb / self.total_mb()
    }
}

impl fmt::Display for GpuGeneration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} ({}): {:.1} MB RF / {:.1} MB total",
            self.name,
            self.year,
            self.register_file_mb,
            self.total_mb()
        )
    }
}

/// The four generations plotted in Figure 2.
#[must_use]
pub fn figure2_generations() -> &'static [GpuGeneration] {
    &GENERATIONS
}

static GENERATIONS: [GpuGeneration; 4] = [
    GpuGeneration {
        name: "Fermi",
        year: 2010,
        l1_and_shared_mb: 1.0,
        l2_mb: 0.75,
        register_file_mb: 2.0,
    },
    GpuGeneration {
        name: "Kepler",
        year: 2012,
        l1_and_shared_mb: 1.0,
        l2_mb: 1.5,
        register_file_mb: 3.75,
    },
    GpuGeneration {
        name: "Maxwell",
        year: 2014,
        l1_and_shared_mb: 2.25,
        l2_mb: 3.0,
        register_file_mb: 6.0,
    },
    GpuGeneration {
        name: "Pascal",
        year: 2016,
        l1_and_shared_mb: 4.5,
        l2_mb: 4.0,
        register_file_mb: 14.3,
    },
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_generations_in_chronological_order() {
        let gens = figure2_generations();
        assert_eq!(gens.len(), 4);
        assert!(gens.windows(2).all(|w| w[0].year < w[1].year));
    }

    #[test]
    fn register_file_share_grows_over_time() {
        let gens = figure2_generations();
        // The trend is upward overall, with a small dip at Maxwell whose SMs
        // traded register capacity for larger shared memory.
        assert!(gens
            .windows(2)
            .all(|w| { w[0].register_file_share() <= w[1].register_file_share() + 0.08 }));
        // Pascal dedicates more than 60% of on-chip storage to registers.
        assert!(gens[3].register_file_share() > 0.6);
        assert!((gens[3].register_file_mb - 14.3).abs() < 1e-9);
    }

    #[test]
    fn totals_and_display() {
        let fermi = figure2_generations()[0];
        assert!((fermi.total_mb() - 3.75).abs() < 1e-9);
        assert!(fermi.to_string().contains("Fermi"));
    }
}
