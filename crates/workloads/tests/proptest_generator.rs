//! Property-based tests for the workload generator: every generated
//! specification respects its [`GeneratorConfig`] bounds, and equal seeds
//! yield equal populations — through both the streaming API and the
//! index-stable `population()` API.

use ltrf_workloads::{GeneratorConfig, WorkloadGenerator, WorkloadSpec};
use proptest::prelude::*;

/// Arbitrary *valid* generator bounds (the space `validate()` accepts),
/// including degenerate-but-legal single-value ranges like
/// `min_regs == max_regs`.
fn arb_config() -> impl Strategy<Value = GeneratorConfig> {
    (
        (8u16..=128, 0u16..=64),
        1u32..=6,
        1u32..=12,
        2usize..=12,
        0usize..=4,
    )
        .prop_map(
            |((min_regs, extra_regs), max_outer, max_inner, max_alu, max_loads)| GeneratorConfig {
                min_regs,
                max_regs: min_regs + extra_regs,
                max_outer_trips: max_outer,
                max_inner_trips: max_inner,
                max_body_alu: max_alu,
                max_body_loads: max_loads,
            },
        )
}

/// The bound checks shared by both properties.
fn assert_within_bounds(spec: &WorkloadSpec, cfg: &GeneratorConfig) {
    prop_assert!(
        (cfg.min_regs..=cfg.max_regs).contains(&spec.regs_per_thread),
        "regs {} outside [{}, {}]",
        spec.regs_per_thread,
        cfg.min_regs,
        cfg.max_regs
    );
    prop_assert!((1..=cfg.max_outer_trips).contains(&spec.outer_trips));
    prop_assert!((1..=cfg.max_inner_trips).contains(&spec.inner_trips));
    prop_assert!((2..=cfg.max_body_alu).contains(&spec.body_alu));
    prop_assert!(spec.body_loads <= cfg.max_body_loads);
    prop_assert!(spec.body_shared <= 4);
    prop_assert!(spec.body_sfu <= 2);
    prop_assert!(spec.unconstrained_regs_per_thread >= spec.regs_per_thread);
    prop_assert!((4..=32).contains(&spec.blocks_per_grid));
    prop_assert_eq!(spec.warps_per_block, 8);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Streaming API: every drawn spec respects the configured bounds and
    /// builds a non-empty kernel.
    #[test]
    fn streaming_specs_respect_bounds(seed in 0u64..1_000_000, cfg in arb_config()) {
        let mut generator = WorkloadGenerator::with_config(seed, cfg);
        for _ in 0..8 {
            let workload = generator.next_workload();
            assert_within_bounds(&workload.spec, &cfg);
            prop_assert!(workload.kernel.static_instruction_count() > 0);
            prop_assert!(workload.spec.dynamic_instructions_per_warp() > 0);
        }
    }

    /// Population API: members respect the bounds, equal seeds yield equal
    /// populations, and membership is index-stable (a member is the same
    /// workload no matter the population size it was enumerated with).
    #[test]
    fn populations_respect_bounds_and_determinism(seed in 0u64..1_000_000, cfg in arb_config()) {
        let population = WorkloadGenerator::population_with_config(seed, 6, cfg);
        for workload in &population {
            assert_within_bounds(&workload.spec, &cfg);
        }
        // Equal seeds, equal populations.
        let again = WorkloadGenerator::population_with_config(seed, 6, cfg);
        for (a, b) in population.iter().zip(&again) {
            prop_assert_eq!(a.spec, b.spec);
        }
        // Index stability: a shorter enumeration is a strict prefix.
        let prefix = WorkloadGenerator::population_with_config(seed, 3, cfg);
        for (i, w) in prefix.iter().enumerate() {
            prop_assert_eq!(w.spec, population[i].spec);
            prop_assert_eq!(
                w.spec,
                WorkloadGenerator::population_member(seed, i as u32, cfg).spec
            );
        }
    }

    /// Streaming determinism: equal seeds yield equal streams.
    #[test]
    fn equal_seeds_yield_equal_streams(seed in 0u64..1_000_000, cfg in arb_config()) {
        let a: Vec<_> = WorkloadGenerator::with_config(seed, cfg).generate(5);
        let b: Vec<_> = WorkloadGenerator::with_config(seed, cfg).generate(5);
        for (x, y) in a.iter().zip(&b) {
            prop_assert_eq!(x.spec, y.spec);
        }
    }
}
