//! Random workload generation.
//!
//! Beyond the fixed evaluated suite, the benchmark harness and the property
//! tests use randomly generated — but structurally realistic — workloads to
//! probe the compiler and the register-file organizations over a much wider
//! space of register pressures, loop shapes, and instruction mixes.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use ltrf_isa::RegisterSensitivity;

use crate::spec::{BenchmarkSuite, MemoryProfile, Workload, WorkloadSpec};

/// Bounds for the random generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GeneratorConfig {
    /// Minimum registers per thread.
    pub min_regs: u16,
    /// Maximum registers per thread.
    pub max_regs: u16,
    /// Maximum outer-loop trip count.
    pub max_outer_trips: u32,
    /// Maximum inner-loop trip count.
    pub max_inner_trips: u32,
    /// Maximum arithmetic instructions per inner-loop body.
    pub max_body_alu: usize,
    /// Maximum global loads per inner-loop body.
    pub max_body_loads: usize,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        GeneratorConfig {
            min_regs: 12,
            max_regs: 128,
            max_outer_trips: 8,
            max_inner_trips: 20,
            max_body_alu: 20,
            max_body_loads: 6,
        }
    }
}

/// Deterministic random workload generator.
#[derive(Debug)]
pub struct WorkloadGenerator {
    rng: StdRng,
    config: GeneratorConfig,
    counter: u32,
}

/// Names handed out to generated workloads (cycled with a numeric suffix).
static GENERATED_NAMES: &[&str] = &[
    "gen-dense",
    "gen-sparse",
    "gen-tiled",
    "gen-reduce",
    "gen-scan",
    "gen-filter",
    "gen-sort",
    "gen-fft",
];

impl WorkloadGenerator {
    /// Creates a generator with the default bounds.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        WorkloadGenerator::with_config(seed, GeneratorConfig::default())
    }

    /// Creates a generator with custom bounds.
    #[must_use]
    pub fn with_config(seed: u64, config: GeneratorConfig) -> Self {
        WorkloadGenerator {
            rng: StdRng::seed_from_u64(seed),
            config,
            counter: 0,
        }
    }

    /// Generates the next random workload specification.
    pub fn next_spec(&mut self) -> WorkloadSpec {
        let cfg = self.config;
        let regs = self.rng.gen_range(cfg.min_regs..=cfg.max_regs);
        let sensitivity = if regs >= 40 {
            RegisterSensitivity::Sensitive
        } else {
            RegisterSensitivity::Insensitive
        };
        let memory = match self.rng.gen_range(0..3) {
            0 => MemoryProfile::Streaming,
            1 => MemoryProfile::CacheResident,
            _ => MemoryProfile::Irregular,
        };
        let suite = match self.rng.gen_range(0..3) {
            0 => BenchmarkSuite::CudaSdk,
            1 => BenchmarkSuite::Rodinia,
            _ => BenchmarkSuite::Parboil,
        };
        let name = GENERATED_NAMES[(self.counter as usize) % GENERATED_NAMES.len()];
        self.counter += 1;
        WorkloadSpec {
            name,
            suite,
            regs_per_thread: regs,
            unconstrained_regs_per_thread: (regs as u32 * 3 / 2).min(256) as u16,
            sensitivity,
            outer_trips: self.rng.gen_range(1..=cfg.max_outer_trips),
            inner_trips: self.rng.gen_range(1..=cfg.max_inner_trips),
            body_alu: self.rng.gen_range(2..=cfg.max_body_alu),
            body_loads: self.rng.gen_range(0..=cfg.max_body_loads),
            body_shared: self.rng.gen_range(0..=4),
            body_sfu: self.rng.gen_range(0..=2),
            barrier_per_outer: self.rng.gen_bool(0.4),
            memory,
            warps_per_block: 8,
            blocks_per_grid: self.rng.gen_range(4..=32),
        }
    }

    /// Generates the next random workload (specification + built kernel).
    pub fn next_workload(&mut self) -> Workload {
        Workload::from_spec(self.next_spec())
    }

    /// Generates `count` workloads.
    pub fn generate(&mut self, count: usize) -> Vec<Workload> {
        (0..count).map(|_| self.next_workload()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a: Vec<_> = WorkloadGenerator::new(42).generate(5);
        let b: Vec<_> = WorkloadGenerator::new(42).generate(5);
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.spec, y.spec);
        }
        let c: Vec<_> = WorkloadGenerator::new(43).generate(5);
        assert!(a.iter().zip(c.iter()).any(|(x, y)| x.spec != y.spec));
    }

    #[test]
    fn generated_workloads_are_valid_and_within_bounds() {
        let mut gen = WorkloadGenerator::new(7);
        for w in gen.generate(20) {
            let cfg = GeneratorConfig::default();
            assert!(w.spec.regs_per_thread >= cfg.min_regs);
            assert!(w.spec.regs_per_thread <= cfg.max_regs);
            assert!(w.kernel.static_instruction_count() > 0);
            assert!(w.spec.dynamic_instructions_per_warp() > 0);
        }
    }

    #[test]
    fn custom_bounds_are_respected() {
        let config = GeneratorConfig {
            min_regs: 64,
            max_regs: 72,
            ..GeneratorConfig::default()
        };
        let mut gen = WorkloadGenerator::with_config(3, config);
        for w in gen.generate(10) {
            assert!((64..=72).contains(&w.spec.regs_per_thread));
            assert!(w.is_register_sensitive());
        }
    }
}
