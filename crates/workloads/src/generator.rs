//! Random workload generation.
//!
//! Beyond the fixed evaluated suite, the benchmark harness and the property
//! tests use randomly generated — but structurally realistic — workloads to
//! probe the compiler and the register-file organizations over a much wider
//! space of register pressures, loop shapes, and instruction mixes.
//!
//! Two access patterns are supported:
//!
//! * the *streaming* API ([`WorkloadGenerator::next_workload`] /
//!   [`WorkloadGenerator::generate`]) draws workloads from one sequential RNG,
//!   so member `i` depends on every draw before it;
//! * the *population* API ([`WorkloadGenerator::population`] /
//!   [`WorkloadGenerator::population_member`]) derives an independent seed per
//!   member index (splitmix64 over the population seed), so member `i` of a
//!   population is the same workload no matter how many other members are
//!   materialized — the index-stable identity the `ltrf-sweep` engine
//!   content-addresses generated campaign points with.

use std::collections::HashMap;
use std::sync::{Mutex, OnceLock};

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use ltrf_isa::RegisterSensitivity;

use crate::spec::{BenchmarkSuite, MemoryProfile, Workload, WorkloadSpec};

/// Bounds for the random generator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct GeneratorConfig {
    /// Minimum registers per thread.
    pub min_regs: u16,
    /// Maximum registers per thread.
    pub max_regs: u16,
    /// Maximum outer-loop trip count.
    pub max_outer_trips: u32,
    /// Maximum inner-loop trip count.
    pub max_inner_trips: u32,
    /// Maximum arithmetic instructions per inner-loop body.
    pub max_body_alu: usize,
    /// Maximum global loads per inner-loop body.
    pub max_body_loads: usize,
}

impl Default for GeneratorConfig {
    fn default() -> Self {
        GeneratorConfig {
            min_regs: 12,
            max_regs: 128,
            max_outer_trips: 8,
            max_inner_trips: 20,
            max_body_alu: 20,
            max_body_loads: 6,
        }
    }
}

impl GeneratorConfig {
    /// Checks that the bounds describe a non-empty space of valid workloads,
    /// returning a human-readable complaint otherwise. Kernels need at least
    /// eight registers ([`WorkloadSpec::build`]'s floor), both loops at least
    /// one trip, and the body at least two arithmetic instructions (the
    /// generator's own lower bound).
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated bound.
    pub fn validate(&self) -> Result<(), String> {
        if self.min_regs < 8 {
            return Err(format!(
                "min_regs must be at least 8, got {}",
                self.min_regs
            ));
        }
        if self.min_regs > self.max_regs {
            return Err(format!(
                "min_regs ({}) exceeds max_regs ({})",
                self.min_regs, self.max_regs
            ));
        }
        if self.max_outer_trips < 1 || self.max_inner_trips < 1 {
            return Err("loop trip-count bounds must be at least 1".to_string());
        }
        if self.max_body_alu < 2 {
            return Err(format!(
                "max_body_alu must be at least 2, got {}",
                self.max_body_alu
            ));
        }
        Ok(())
    }
}

/// Deterministic random workload generator.
#[derive(Debug)]
pub struct WorkloadGenerator {
    rng: StdRng,
    config: GeneratorConfig,
    counter: u32,
}

/// Names handed out to generated workloads (cycled with a numeric suffix).
static GENERATED_NAMES: &[&str] = &[
    "gen-dense",
    "gen-sparse",
    "gen-tiled",
    "gen-reduce",
    "gen-scan",
    "gen-filter",
    "gen-sort",
    "gen-fft",
];

impl WorkloadGenerator {
    /// Creates a generator with the default bounds.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        WorkloadGenerator::with_config(seed, GeneratorConfig::default())
    }

    /// Creates a generator with custom bounds.
    #[must_use]
    pub fn with_config(seed: u64, config: GeneratorConfig) -> Self {
        WorkloadGenerator {
            rng: StdRng::seed_from_u64(seed),
            config,
            counter: 0,
        }
    }

    /// Generates the next random workload specification.
    pub fn next_spec(&mut self) -> WorkloadSpec {
        let name = GENERATED_NAMES[(self.counter as usize) % GENERATED_NAMES.len()];
        self.counter += 1;
        spec_from_rng(&mut self.rng, self.config, name)
    }

    /// Generates the next random workload (specification + built kernel).
    pub fn next_workload(&mut self) -> Workload {
        Workload::from_spec(self.next_spec())
    }

    /// Generates `count` workloads.
    pub fn generate(&mut self, count: usize) -> Vec<Workload> {
        (0..count).map(|_| self.next_workload()).collect()
    }

    /// The derived seed of member `index` within the population seeded
    /// `population_seed` (a splitmix64 step over seed and index).
    ///
    /// Members are seeded independently of one another, so
    /// `population(seed, n)[i]` is the same workload for every `n > i` —
    /// the identity campaign caches rely on.
    #[must_use]
    pub fn member_seed(population_seed: u64, index: u32) -> u64 {
        let mut z = population_seed
            .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(u64::from(index) + 1));
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// The stable name of population member `index` (base name cycled from
    /// the generated-name table plus the zero-padded index, so names are
    /// unique within any realistically sized population and never collide
    /// with the evaluated suite's names).
    #[must_use]
    pub fn member_name(index: u32) -> &'static str {
        static NAMES: OnceLock<Mutex<HashMap<u32, &'static str>>> = OnceLock::new();
        let mut names = NAMES
            .get_or_init(|| Mutex::new(HashMap::new()))
            .lock()
            .expect("member-name registry never panics while locked");
        names.entry(index).or_insert_with(|| {
            let base = GENERATED_NAMES[index as usize % GENERATED_NAMES.len()];
            Box::leak(format!("{base}-{index:04}").into_boxed_str())
        })
    }

    /// Materializes member `index` of the population seeded `population_seed`
    /// under `config`: an independent, index-stable draw (see
    /// [`Self::member_seed`]).
    ///
    /// # Panics
    ///
    /// Panics if `config` fails [`GeneratorConfig::validate`] (a static
    /// campaign-definition bug, not a runtime condition).
    #[must_use]
    pub fn population_member(
        population_seed: u64,
        index: u32,
        config: GeneratorConfig,
    ) -> Workload {
        if let Err(complaint) = config.validate() {
            panic!("invalid generator bounds: {complaint}");
        }
        let mut rng = StdRng::seed_from_u64(Self::member_seed(population_seed, index));
        Workload::from_spec(spec_from_rng(&mut rng, config, Self::member_name(index)))
    }

    /// Materializes the first `count` members of the population seeded
    /// `population_seed` with the default bounds.
    #[must_use]
    pub fn population(population_seed: u64, count: usize) -> Vec<Workload> {
        Self::population_with_config(population_seed, count, GeneratorConfig::default())
    }

    /// [`Self::population`] with explicit generator bounds.
    ///
    /// # Panics
    ///
    /// Panics if `config` fails [`GeneratorConfig::validate`].
    #[must_use]
    pub fn population_with_config(
        population_seed: u64,
        count: usize,
        config: GeneratorConfig,
    ) -> Vec<Workload> {
        (0..count)
            .map(|i| Self::population_member(population_seed, i as u32, config))
            .collect()
    }
}

/// Draws one specification from `rng` under `cfg` — the single sampling
/// routine behind both the streaming and the population APIs (so the two can
/// never drift in what "a generated workload" means).
fn spec_from_rng(rng: &mut StdRng, cfg: GeneratorConfig, name: &'static str) -> WorkloadSpec {
    let regs = rng.gen_range(cfg.min_regs..=cfg.max_regs);
    let sensitivity = if regs >= 40 {
        RegisterSensitivity::Sensitive
    } else {
        RegisterSensitivity::Insensitive
    };
    let memory = match rng.gen_range(0..3) {
        0 => MemoryProfile::Streaming,
        1 => MemoryProfile::CacheResident,
        _ => MemoryProfile::Irregular,
    };
    let suite = match rng.gen_range(0..3) {
        0 => BenchmarkSuite::CudaSdk,
        1 => BenchmarkSuite::Rodinia,
        _ => BenchmarkSuite::Parboil,
    };
    WorkloadSpec {
        name,
        suite,
        regs_per_thread: regs,
        unconstrained_regs_per_thread: (regs as u32 * 3 / 2).min(256) as u16,
        sensitivity,
        outer_trips: rng.gen_range(1..=cfg.max_outer_trips),
        inner_trips: rng.gen_range(1..=cfg.max_inner_trips),
        body_alu: rng.gen_range(2..=cfg.max_body_alu),
        body_loads: rng.gen_range(0..=cfg.max_body_loads),
        body_shared: rng.gen_range(0..=4),
        body_sfu: rng.gen_range(0..=2),
        barrier_per_outer: rng.gen_bool(0.4),
        memory,
        warps_per_block: 8,
        blocks_per_grid: rng.gen_range(4..=32),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a: Vec<_> = WorkloadGenerator::new(42).generate(5);
        let b: Vec<_> = WorkloadGenerator::new(42).generate(5);
        for (x, y) in a.iter().zip(b.iter()) {
            assert_eq!(x.spec, y.spec);
        }
        let c: Vec<_> = WorkloadGenerator::new(43).generate(5);
        assert!(a.iter().zip(c.iter()).any(|(x, y)| x.spec != y.spec));
    }

    #[test]
    fn generated_workloads_are_valid_and_within_bounds() {
        let mut gen = WorkloadGenerator::new(7);
        for w in gen.generate(20) {
            let cfg = GeneratorConfig::default();
            assert!(w.spec.regs_per_thread >= cfg.min_regs);
            assert!(w.spec.regs_per_thread <= cfg.max_regs);
            assert!(w.kernel.static_instruction_count() > 0);
            assert!(w.spec.dynamic_instructions_per_warp() > 0);
        }
    }

    #[test]
    fn custom_bounds_are_respected() {
        let config = GeneratorConfig {
            min_regs: 64,
            max_regs: 72,
            ..GeneratorConfig::default()
        };
        let mut gen = WorkloadGenerator::with_config(3, config);
        for w in gen.generate(10) {
            assert!((64..=72).contains(&w.spec.regs_per_thread));
            assert!(w.is_register_sensitive());
        }
    }

    #[test]
    fn population_members_are_index_stable() {
        let short = WorkloadGenerator::population(11, 4);
        let long = WorkloadGenerator::population(11, 12);
        for (i, w) in short.iter().enumerate() {
            assert_eq!(
                w.spec, long[i].spec,
                "member {i} depends on population size"
            );
            assert_eq!(
                w.spec,
                WorkloadGenerator::population_member(11, i as u32, GeneratorConfig::default()).spec
            );
        }
        // Distinct indices and distinct population seeds both decorrelate.
        assert_ne!(long[0].spec.name, long[8].spec.name);
        assert_ne!(
            WorkloadGenerator::member_seed(11, 0),
            WorkloadGenerator::member_seed(11, 1)
        );
        assert_ne!(
            WorkloadGenerator::member_seed(11, 0),
            WorkloadGenerator::member_seed(12, 0)
        );
    }

    #[test]
    fn member_names_are_unique_and_interned() {
        assert_eq!(WorkloadGenerator::member_name(0), "gen-dense-0000");
        assert_eq!(WorkloadGenerator::member_name(9), "gen-sparse-0009");
        // Interned: repeated lookups hand back the same allocation.
        assert!(std::ptr::eq(
            WorkloadGenerator::member_name(3),
            WorkloadGenerator::member_name(3)
        ));
    }

    #[test]
    fn invalid_bounds_are_rejected() {
        let too_few_regs = GeneratorConfig {
            min_regs: 4,
            ..GeneratorConfig::default()
        };
        assert!(too_few_regs.validate().is_err());
        let inverted = GeneratorConfig {
            min_regs: 64,
            max_regs: 32,
            ..GeneratorConfig::default()
        };
        assert!(inverted.validate().is_err());
        let no_alu = GeneratorConfig {
            max_body_alu: 1,
            ..GeneratorConfig::default()
        };
        assert!(no_alu.validate().is_err());
        assert!(GeneratorConfig::default().validate().is_ok());
    }
}
