//! # ltrf-workloads
//!
//! The synthetic workload suite of the LTRF reproduction.
//!
//! The original study evaluates fourteen CUDA kernels (nine
//! register-sensitive, five register-insensitive) drawn from CUDA SDK,
//! Rodinia, and Parboil. Real CUDA binaries cannot be compiled or executed
//! here, so this crate provides synthetic stand-ins built on the `ltrf-isa`
//! kernel IR whose register pressure, loop structure, instruction mix, and
//! memory behaviour follow the published character of each benchmark. The
//! substitution and its rationale are documented in the repository's
//! `DESIGN.md`.
//!
//! * [`WorkloadSpec`] / [`Workload`] — declarative kernel descriptions and
//!   their built form,
//! * [`suite`] — the fourteen evaluated workloads plus the 35-kernel
//!   screening set's register demands (Table 1),
//! * [`WorkloadGenerator`] — deterministic random workloads for wider
//!   stress-testing.
//!
//! ```
//! let suite = ltrf_workloads::evaluated_suite();
//! assert_eq!(suite.len(), 14);
//! assert_eq!(suite.iter().filter(|w| w.is_register_sensitive()).count(), 9);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod generator;
mod spec;
pub mod suite;

pub use generator::{GeneratorConfig, WorkloadGenerator};
pub use spec::{BenchmarkSuite, MemoryProfile, Workload, WorkloadSpec};
pub use suite::{
    by_name, evaluated_specs, evaluated_suite, quick_suite, register_insensitive_suite,
    register_sensitive_suite, unconstrained_register_demands, QUICK_SUBSET,
};
