//! Parameterized kernel construction.
//!
//! Every synthetic benchmark in the suite is described by a [`WorkloadSpec`]:
//! how many registers its threads use, how its loop nest is shaped, how its
//! instruction mix looks, and how it touches memory. [`WorkloadSpec::build`]
//! turns the description into a concrete [`Kernel`] via the `ltrf-isa`
//! builder. Keeping the description declarative makes the suite easy to
//! audit against the published character of the benchmarks it mimics and
//! gives the random workload generator a single point of truth.

use ltrf_isa::{ArchReg, Kernel, KernelBuilder, LaunchConfig, Opcode, RegisterSensitivity};
use ltrf_sim::MemoryBehavior;
use serde::{Deserialize, Serialize};

/// Which published benchmark suite a workload is modelled after.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum BenchmarkSuite {
    /// NVIDIA CUDA SDK samples.
    CudaSdk,
    /// The Rodinia heterogeneous-computing suite.
    Rodinia,
    /// The Parboil throughput-computing suite.
    Parboil,
    /// Workloads lowered from an external execution trace (`ltrf-trace`),
    /// rather than modelled after a published suite.
    Traced,
}

/// Coarse memory-access character of a workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum MemoryProfile {
    /// Coalesced streaming through a large footprint (e.g. dense linear
    /// algebra, stencils).
    Streaming,
    /// Working set that largely fits in the on-chip caches.
    CacheResident,
    /// Scattered, data-dependent accesses (graph traversal, sparse algebra).
    Irregular,
}

impl MemoryProfile {
    /// The simulator memory behaviour corresponding to this profile.
    #[must_use]
    pub fn behavior(self) -> MemoryBehavior {
        match self {
            MemoryProfile::Streaming => MemoryBehavior::streaming(),
            MemoryProfile::CacheResident => MemoryBehavior::cache_resident(),
            MemoryProfile::Irregular => MemoryBehavior::irregular(),
        }
    }
}

/// Declarative description of a synthetic kernel.
///
/// Serialize-only: the `&'static str` name ties specs to the static suite
/// catalogue (and the generator's name table), so specs are reconstructed
/// from those sources rather than deserialized.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct WorkloadSpec {
    /// Benchmark name (matches the paper's workload names).
    pub name: &'static str,
    /// Suite the benchmark comes from.
    pub suite: BenchmarkSuite,
    /// Registers per thread the compiler would allocate under the default
    /// register budget (drives occupancy in the simulator).
    pub regs_per_thread: u16,
    /// Registers per thread the kernel would use with `maxregcount` lifted
    /// (drives the Table 1 capacity-requirement study).
    pub unconstrained_regs_per_thread: u16,
    /// Whether the register file limits the kernel's achievable TLP.
    pub sensitivity: RegisterSensitivity,
    /// Iterations of the outer loop.
    pub outer_trips: u32,
    /// Iterations of the inner loop per outer iteration.
    pub inner_trips: u32,
    /// Arithmetic instructions in the inner-loop body.
    pub body_alu: usize,
    /// Global loads in the inner-loop body.
    pub body_loads: usize,
    /// Shared-memory accesses in the inner-loop body.
    pub body_shared: usize,
    /// Special-function operations in the inner-loop body.
    pub body_sfu: usize,
    /// Whether the outer loop ends with a barrier (tiled kernels).
    pub barrier_per_outer: bool,
    /// Memory-access character.
    pub memory: MemoryProfile,
    /// Warps per thread block.
    pub warps_per_block: u32,
    /// Thread blocks in the grid.
    pub blocks_per_grid: u32,
}

impl WorkloadSpec {
    /// Total dynamic instructions one warp of this kernel executes
    /// (prologue + loop nest + epilogue), used by tests and by the harness to
    /// report simulation effort.
    #[must_use]
    pub fn dynamic_instructions_per_warp(&self) -> u64 {
        let body = (self.body_alu + self.body_loads + self.body_shared + self.body_sfu) as u64;
        let prologue = self.prologue_len() as u64;
        let inner = body * u64::from(self.inner_trips);
        // Per outer iteration: one header instruction, the inner loop, one
        // latch instruction, and optionally a barrier.
        let per_outer = inner + 2 + u64::from(self.barrier_per_outer);
        prologue + per_outer * u64::from(self.outer_trips) + 1
    }

    fn prologue_len(&self) -> usize {
        // The prologue materialises every declared register once (base
        // addresses, tile pointers, loop-invariant values), which is what
        // creates the kernel's occupancy pressure; the hot inner loop then
        // works on a compact subset, as real GPU kernels do.
        (self.regs_per_thread as usize).max(4)
    }

    /// Builds the concrete kernel for this specification.
    ///
    /// The CFG shape is always: a prologue block that initialises the live-in
    /// registers, an outer-loop header, an inner-loop body block (the hot
    /// loop), an outer latch (with optional barrier), and an epilogue that
    /// stores results.
    ///
    /// # Panics
    ///
    /// Panics if the specification is degenerate (zero registers or zero trip
    /// counts); the suite and the generator never produce such specs.
    #[must_use]
    pub fn build(&self) -> Kernel {
        assert!(
            self.regs_per_thread >= 8,
            "workloads need at least 8 registers"
        );
        assert!(self.outer_trips >= 1 && self.inner_trips >= 1);
        let regs = self.regs_per_thread;
        let r = |i: u16| ArchReg::new((i % regs.min(256)) as u8);

        let mut b = KernelBuilder::new(self.name, regs);
        b.sensitivity(self.sensitivity);
        b.launch(LaunchConfig::new(
            self.warps_per_block,
            self.blocks_per_grid,
            0,
        ));

        let prologue = b.entry_block();
        let outer = b.add_block();
        let inner = b.add_block();
        let latch = b.add_block();
        let epilogue = b.add_block();

        // Prologue: materialise base addresses and loop-invariant values.
        let prologue_len = self.prologue_len();
        for i in 0..prologue_len {
            b.push(prologue, Opcode::Mov, Some(r(i as u16)), &[]);
        }
        b.jump(prologue, outer);

        // Outer-loop header: a little index arithmetic.
        b.push(outer, Opcode::IAlu, Some(r(0)), &[r(1)]);
        b.jump(outer, inner);

        // Inner-loop body: the hot loop with the configured instruction mix.
        // The loop works on a compact set of accumulator registers (as real
        // kernels do), while the full register allocation was touched in the
        // prologue; this is what lets a 16-register interval capture a loop.
        let hi_base = regs / 2;
        let inner_slots = (regs - hi_base).clamp(1, 8);
        let mut dest = 0u16;
        let mut next_dest = || {
            let d = hi_base + (dest % inner_slots);
            dest += 1;
            d
        };
        for i in 0..self.body_loads {
            let d = next_dest();
            b.push(inner, Opcode::LoadGlobal, Some(r(d)), &[r(i as u16 % 4)]);
        }
        for i in 0..self.body_shared {
            let d = next_dest();
            b.push(inner, Opcode::LoadShared, Some(r(d)), &[r(i as u16 % 4)]);
        }
        for i in 0..self.body_alu {
            let d = next_dest();
            let s1 = r(hi_base + (i as u16 % inner_slots));
            let s2 = r(i as u16 % 4);
            let op = if i % 3 == 0 {
                Opcode::FFma
            } else {
                Opcode::FAlu
            };
            if op == Opcode::FFma {
                b.push(inner, op, Some(r(d)), &[s1, s2, r(d)]);
            } else {
                b.push(inner, op, Some(r(d)), &[s1, s2]);
            }
        }
        for _ in 0..self.body_sfu {
            let d = next_dest();
            b.push(inner, Opcode::Sfu, Some(r(d)), &[r(d)]);
        }
        b.loop_branch(inner, inner, latch, self.inner_trips);

        // Outer latch: accumulate and optionally synchronise.
        b.push(latch, Opcode::FAlu, Some(r(2)), &[r(2), r(hi_base)]);
        if self.barrier_per_outer {
            b.push(latch, Opcode::Barrier, None, &[]);
        }
        b.loop_branch(latch, outer, epilogue, self.outer_trips);

        // Epilogue: store the result.
        b.push(epilogue, Opcode::StoreGlobal, None, &[r(1), r(2)]);
        b.exit(epilogue);

        b.build()
            .expect("workload specifications always build valid kernels")
    }
}

/// A built workload: the kernel plus everything the harness needs to run it.
#[derive(Debug, Clone)]
pub struct Workload {
    /// The specification the kernel was built from.
    pub spec: WorkloadSpec,
    /// The kernel.
    pub kernel: Kernel,
}

impl Workload {
    /// Builds the workload from its specification.
    #[must_use]
    pub fn from_spec(spec: WorkloadSpec) -> Self {
        Workload {
            kernel: spec.build(),
            spec,
        }
    }

    /// Benchmark name.
    #[must_use]
    pub fn name(&self) -> &'static str {
        self.spec.name
    }

    /// The simulator memory behaviour for this workload.
    #[must_use]
    pub fn memory(&self) -> MemoryBehavior {
        self.spec.memory.behavior()
    }

    /// Whether the workload is register-sensitive.
    #[must_use]
    pub fn is_register_sensitive(&self) -> bool {
        self.spec.sensitivity == RegisterSensitivity::Sensitive
    }

    /// The kernel with its grid scaled for an `sm_count`-SM GPU (weak
    /// scaling: `sm_count` times as many CTAs, so every SM of a multi-SM
    /// campaign receives the same per-SM work the single-SM campaigns run).
    ///
    /// The experiment runner applies the same scaling itself from an
    /// `ExperimentConfig`'s `sm_count`; this helper exists for callers that
    /// drive the simulator directly.
    #[must_use]
    pub fn kernel_for_sm_count(&self, sm_count: usize) -> Kernel {
        self.kernel
            .with_grid_scaled(u32::try_from(sm_count.max(1)).unwrap_or(u32::MAX))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ltrf_isa::trace::trace_stats;

    fn spec() -> WorkloadSpec {
        WorkloadSpec {
            name: "unit-test",
            suite: BenchmarkSuite::Rodinia,
            regs_per_thread: 32,
            unconstrained_regs_per_thread: 48,
            sensitivity: RegisterSensitivity::Sensitive,
            outer_trips: 3,
            inner_trips: 5,
            body_alu: 6,
            body_loads: 2,
            body_shared: 1,
            body_sfu: 1,
            barrier_per_outer: true,
            memory: MemoryProfile::Streaming,
            warps_per_block: 8,
            blocks_per_grid: 4,
        }
    }

    #[test]
    fn build_produces_a_valid_kernel_with_expected_shape() {
        let w = Workload::from_spec(spec());
        assert_eq!(w.name(), "unit-test");
        assert!(w.is_register_sensitive());
        assert_eq!(w.kernel.cfg.block_count(), 5);
        assert_eq!(w.kernel.regs_per_thread(), 32);
        assert_eq!(w.kernel.launch().total_warps(), 32);
    }

    #[test]
    fn dynamic_instruction_prediction_matches_the_trace() {
        let s = spec();
        let w = Workload::from_spec(s);
        let stats = trace_stats(&w.kernel, 3);
        assert_eq!(
            stats.dynamic_instructions,
            s.dynamic_instructions_per_warp()
        );
    }

    #[test]
    fn kernel_for_sm_count_scales_the_grid() {
        let w = Workload::from_spec(spec());
        let scaled = w.kernel_for_sm_count(8);
        assert_eq!(scaled.launch().blocks_per_grid, 8 * 4);
        assert_eq!(scaled.launch().warps_per_block, 8);
        assert_eq!(
            w.kernel_for_sm_count(1).launch(),
            w.kernel.launch(),
            "one SM keeps the original grid"
        );
    }

    #[test]
    fn memory_profile_maps_to_behaviour() {
        assert_eq!(
            MemoryProfile::Streaming.behavior(),
            MemoryBehavior::streaming()
        );
        assert_eq!(
            MemoryProfile::CacheResident.behavior(),
            MemoryBehavior::cache_resident()
        );
        assert_eq!(
            MemoryProfile::Irregular.behavior(),
            MemoryBehavior::irregular()
        );
    }

    #[test]
    fn register_footprint_scales_with_spec() {
        let small = WorkloadSpec {
            regs_per_thread: 16,
            ..spec()
        }
        .build();
        let large = WorkloadSpec {
            regs_per_thread: 64,
            ..spec()
        }
        .build();
        assert!(large.referenced_registers().len() > small.referenced_registers().len());
    }
}
