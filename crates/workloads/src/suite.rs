//! The evaluated workload suite.
//!
//! The paper runs 35 kernels from CUDA SDK, Rodinia, and Parboil and selects
//! fourteen for detailed evaluation: nine register-sensitive and five
//! register-insensitive. We mirror that selection with synthetic kernels
//! whose register pressure, loop structure, instruction mix, and memory
//! behaviour follow the published character of each benchmark (register
//! counts from `nvcc -maxrregcount` studies, arithmetic intensity and memory
//! divergence from the Rodinia/Parboil characterisation papers). The suite is
//! a substitution for the real binaries — documented in `DESIGN.md` — chosen
//! to preserve the properties the LTRF evaluation actually depends on.

use ltrf_isa::RegisterSensitivity;

use crate::spec::{BenchmarkSuite, MemoryProfile, Workload, WorkloadSpec};

/// Specifications of the fourteen evaluated workloads.
#[must_use]
pub fn evaluated_specs() -> Vec<WorkloadSpec> {
    use BenchmarkSuite::{CudaSdk, Parboil, Rodinia};
    use MemoryProfile::{CacheResident, Irregular, Streaming};
    use RegisterSensitivity::{Insensitive, Sensitive};
    vec![
        // ------------------------- register-sensitive -------------------------
        WorkloadSpec {
            name: "sgemm",
            suite: Parboil,
            regs_per_thread: 96,
            unconstrained_regs_per_thread: 160,
            sensitivity: Sensitive,
            outer_trips: 8,
            inner_trips: 16,
            body_alu: 20,
            body_loads: 2,
            body_shared: 4,
            body_sfu: 0,
            barrier_per_outer: true,
            memory: Streaming,
            warps_per_block: 8,
            blocks_per_grid: 16,
        },
        WorkloadSpec {
            name: "mri-q",
            suite: Parboil,
            regs_per_thread: 72,
            unconstrained_regs_per_thread: 120,
            sensitivity: Sensitive,
            outer_trips: 6,
            inner_trips: 24,
            body_alu: 14,
            body_loads: 1,
            body_shared: 0,
            body_sfu: 4,
            barrier_per_outer: false,
            memory: CacheResident,
            warps_per_block: 8,
            blocks_per_grid: 16,
        },
        WorkloadSpec {
            name: "stencil",
            suite: Parboil,
            regs_per_thread: 64,
            unconstrained_regs_per_thread: 96,
            sensitivity: Sensitive,
            outer_trips: 10,
            inner_trips: 12,
            body_alu: 12,
            body_loads: 6,
            body_shared: 0,
            body_sfu: 0,
            barrier_per_outer: false,
            memory: Streaming,
            warps_per_block: 8,
            blocks_per_grid: 16,
        },
        WorkloadSpec {
            name: "backprop",
            suite: Rodinia,
            regs_per_thread: 56,
            unconstrained_regs_per_thread: 88,
            sensitivity: Sensitive,
            outer_trips: 8,
            inner_trips: 12,
            body_alu: 12,
            body_loads: 3,
            body_shared: 3,
            body_sfu: 1,
            barrier_per_outer: true,
            memory: Streaming,
            warps_per_block: 8,
            blocks_per_grid: 12,
        },
        WorkloadSpec {
            name: "hotspot",
            suite: Rodinia,
            regs_per_thread: 60,
            unconstrained_regs_per_thread: 92,
            sensitivity: Sensitive,
            outer_trips: 8,
            inner_trips: 10,
            body_alu: 16,
            body_loads: 4,
            body_shared: 2,
            body_sfu: 0,
            barrier_per_outer: true,
            memory: CacheResident,
            warps_per_block: 8,
            blocks_per_grid: 12,
        },
        WorkloadSpec {
            name: "lud",
            suite: Rodinia,
            regs_per_thread: 64,
            unconstrained_regs_per_thread: 104,
            sensitivity: Sensitive,
            outer_trips: 10,
            inner_trips: 10,
            body_alu: 14,
            body_loads: 2,
            body_shared: 4,
            body_sfu: 0,
            barrier_per_outer: true,
            memory: CacheResident,
            warps_per_block: 8,
            blocks_per_grid: 12,
        },
        WorkloadSpec {
            name: "srad",
            suite: Rodinia,
            regs_per_thread: 52,
            unconstrained_regs_per_thread: 80,
            sensitivity: Sensitive,
            outer_trips: 8,
            inner_trips: 12,
            body_alu: 12,
            body_loads: 5,
            body_shared: 0,
            body_sfu: 2,
            barrier_per_outer: false,
            memory: Streaming,
            warps_per_block: 8,
            blocks_per_grid: 12,
        },
        WorkloadSpec {
            name: "nw",
            suite: Rodinia,
            regs_per_thread: 48,
            unconstrained_regs_per_thread: 72,
            sensitivity: Sensitive,
            outer_trips: 12,
            inner_trips: 8,
            body_alu: 10,
            body_loads: 3,
            body_shared: 4,
            body_sfu: 0,
            barrier_per_outer: true,
            memory: CacheResident,
            warps_per_block: 8,
            blocks_per_grid: 12,
        },
        WorkloadSpec {
            name: "pathfinder",
            suite: Rodinia,
            regs_per_thread: 44,
            unconstrained_regs_per_thread: 68,
            sensitivity: Sensitive,
            outer_trips: 10,
            inner_trips: 10,
            body_alu: 10,
            body_loads: 3,
            body_shared: 3,
            body_sfu: 0,
            barrier_per_outer: true,
            memory: CacheResident,
            warps_per_block: 8,
            blocks_per_grid: 12,
        },
        // ------------------------ register-insensitive ------------------------
        WorkloadSpec {
            name: "bfs",
            suite: Rodinia,
            regs_per_thread: 20,
            unconstrained_regs_per_thread: 24,
            sensitivity: Insensitive,
            outer_trips: 6,
            inner_trips: 12,
            body_alu: 4,
            body_loads: 5,
            body_shared: 0,
            body_sfu: 0,
            barrier_per_outer: false,
            memory: Irregular,
            warps_per_block: 8,
            blocks_per_grid: 16,
        },
        WorkloadSpec {
            name: "btree",
            suite: Rodinia,
            regs_per_thread: 22,
            unconstrained_regs_per_thread: 28,
            sensitivity: Insensitive,
            outer_trips: 6,
            inner_trips: 10,
            body_alu: 5,
            body_loads: 4,
            body_shared: 0,
            body_sfu: 0,
            barrier_per_outer: false,
            memory: Irregular,
            warps_per_block: 8,
            blocks_per_grid: 16,
        },
        WorkloadSpec {
            name: "kmeans",
            suite: Rodinia,
            regs_per_thread: 24,
            unconstrained_regs_per_thread: 30,
            sensitivity: Insensitive,
            outer_trips: 8,
            inner_trips: 12,
            body_alu: 8,
            body_loads: 3,
            body_shared: 0,
            body_sfu: 1,
            barrier_per_outer: false,
            memory: Streaming,
            warps_per_block: 8,
            blocks_per_grid: 16,
        },
        WorkloadSpec {
            name: "spmv",
            suite: Parboil,
            regs_per_thread: 20,
            unconstrained_regs_per_thread: 26,
            sensitivity: Insensitive,
            outer_trips: 6,
            inner_trips: 14,
            body_alu: 5,
            body_loads: 5,
            body_shared: 0,
            body_sfu: 0,
            barrier_per_outer: false,
            memory: Irregular,
            warps_per_block: 8,
            blocks_per_grid: 16,
        },
        WorkloadSpec {
            name: "histo",
            suite: CudaSdk,
            regs_per_thread: 18,
            unconstrained_regs_per_thread: 22,
            sensitivity: Insensitive,
            outer_trips: 8,
            inner_trips: 10,
            body_alu: 4,
            body_loads: 3,
            body_shared: 3,
            body_sfu: 0,
            barrier_per_outer: true,
            memory: Streaming,
            warps_per_block: 8,
            blocks_per_grid: 16,
        },
    ]
}

/// Builds the full evaluated suite (nine register-sensitive followed by five
/// register-insensitive workloads).
#[must_use]
pub fn evaluated_suite() -> Vec<Workload> {
    evaluated_specs()
        .into_iter()
        .map(Workload::from_spec)
        .collect()
}

/// The canonical four-workload quick subset (two register-sensitive, two
/// insensitive) used by unit tests, the Criterion benches, and the `sweep`
/// CLI's `--quick` mode. One copy, so every driver selects the same points
/// (which also keeps their sweep-cache entries interchangeable).
pub const QUICK_SUBSET: [&str; 4] = ["hotspot", "pathfinder", "btree", "histo"];

/// Builds the quick four-workload subset ([`QUICK_SUBSET`]).
#[must_use]
pub fn quick_suite() -> Vec<Workload> {
    evaluated_suite()
        .into_iter()
        .filter(|w| QUICK_SUBSET.contains(&w.name()))
        .collect()
}

/// Builds only the register-sensitive workloads.
#[must_use]
pub fn register_sensitive_suite() -> Vec<Workload> {
    evaluated_suite()
        .into_iter()
        .filter(Workload::is_register_sensitive)
        .collect()
}

/// Builds only the register-insensitive workloads.
#[must_use]
pub fn register_insensitive_suite() -> Vec<Workload> {
    evaluated_suite()
        .into_iter()
        .filter(|w| !w.is_register_sensitive())
        .collect()
}

/// Looks a workload up by name.
#[must_use]
pub fn by_name(name: &str) -> Option<Workload> {
    evaluated_specs()
        .into_iter()
        .find(|s| s.name == name)
        .map(Workload::from_spec)
}

/// Per-thread register demands of the wider 35-kernel screening suite with
/// `maxregcount` lifted, used by the Table 1 capacity study. The first
/// fourteen entries correspond to the evaluated suite; the remainder model
/// the rest of the screening set.
#[must_use]
pub fn unconstrained_register_demands() -> Vec<u16> {
    let mut demands: Vec<u16> = evaluated_specs()
        .iter()
        .map(|s| s.unconstrained_regs_per_thread)
        .collect();
    // The remaining kernels of the 35-benchmark screening suite, spanning the
    // low-to-moderate register demands typical of CUDA SDK samples.
    demands.extend_from_slice(&[
        16, 18, 20, 22, 24, 26, 28, 30, 32, 36, 40, 44, 48, 52, 56, 60, 64, 72, 80, 96, 112,
    ]);
    demands
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn suite_has_nine_sensitive_and_five_insensitive_workloads() {
        let suite = evaluated_suite();
        assert_eq!(suite.len(), 14);
        assert_eq!(register_sensitive_suite().len(), 9);
        assert_eq!(register_insensitive_suite().len(), 5);
    }

    #[test]
    fn workload_names_are_unique_and_kernels_are_valid() {
        let suite = evaluated_suite();
        let names: HashSet<_> = suite.iter().map(|w| w.name()).collect();
        assert_eq!(names.len(), suite.len());
        for w in &suite {
            assert!(w.kernel.static_instruction_count() > 0);
            assert_eq!(w.kernel.name(), w.name());
        }
    }

    #[test]
    fn sensitive_workloads_demand_more_registers() {
        let sensitive_min = register_sensitive_suite()
            .iter()
            .map(|w| w.spec.regs_per_thread)
            .min()
            .unwrap();
        let insensitive_max = register_insensitive_suite()
            .iter()
            .map(|w| w.spec.regs_per_thread)
            .max()
            .unwrap();
        assert!(
            sensitive_min > insensitive_max,
            "register-sensitive kernels must demand more registers ({sensitive_min} vs {insensitive_max})"
        );
    }

    #[test]
    fn lookup_by_name() {
        assert!(by_name("sgemm").is_some());
        assert!(by_name("btree").is_some());
        assert!(by_name("does-not-exist").is_none());
    }

    #[test]
    fn screening_suite_has_35_register_demands() {
        let demands = unconstrained_register_demands();
        assert_eq!(demands.len(), 35);
        assert!(demands.iter().all(|&d| (8..=256).contains(&d)));
    }

    #[test]
    fn dynamic_lengths_are_simulation_friendly() {
        for spec in evaluated_specs() {
            let dynamic = spec.dynamic_instructions_per_warp();
            assert!(
                (200..50_000).contains(&dynamic),
                "{} has {} dynamic instructions per warp",
                spec.name,
                dynamic
            );
        }
    }
}
