//! # ltrf
//!
//! Umbrella crate of the LTRF reproduction (*LTRF: Enabling High-Capacity
//! Register Files for GPUs via Hardware/Software Cooperative Register
//! Prefetching*, ASPLOS 2018). It re-exports the workspace crates under one
//! roof so examples, integration tests, and downstream users can depend on a
//! single crate:
//!
//! * [`isa`] — the synthetic GPU ISA and kernel IR,
//! * [`compiler`] — register-interval formation, liveness, strands, and
//!   PREFETCH scheduling,
//! * [`tech`] — memory-technology timing/area/power models,
//! * [`sim`] — the cycle-level SM timing simulator,
//! * [`core`] — the register-file organizations (BL, RFC, SHRF, LTRF, LTRF+,
//!   Ideal) and the experiment runner,
//! * [`workloads`] — the synthetic benchmark suite,
//! * [`trace`] — accelsim-style trace ingestion (recorded workloads lowered
//!   back into kernels).
//!
//! ## Quickstart
//!
//! ```
//! use ltrf::core::{run_normalized, ExperimentConfig, Organization};
//! use ltrf::workloads::by_name;
//!
//! let workload = by_name("hotspot").expect("hotspot is in the suite");
//! let config = ExperimentConfig::for_table2(Organization::Ltrf, 7);
//! let result = run_normalized(&workload.kernel, workload.memory(), 1, &config).unwrap();
//! assert!(result.normalized_ipc > 0.0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use ltrf_compiler as compiler;
pub use ltrf_core as core;
pub use ltrf_isa as isa;
pub use ltrf_sim as sim;
pub use ltrf_tech as tech;
pub use ltrf_trace as trace;
pub use ltrf_workloads as workloads;
