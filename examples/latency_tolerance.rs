//! Latency tolerance: sweep the main register file's access latency from 1x
//! to 7x and find the maximum tolerable latency of each organization (the
//! paper's Figure 11 metric) for one workload.
//!
//! Run with `cargo run --release --example latency_tolerance`.

use ltrf::core::{latency_sweep, paper_latency_factors, ExperimentConfig, Organization};
use ltrf::workloads::by_name;

fn main() {
    let workload = by_name("backprop").expect("backprop is part of the evaluated suite");
    let factors = paper_latency_factors();
    println!(
        "workload: {} — IPC relative to the same design at 1x register-file latency\n",
        workload.name()
    );
    print!("{:<16}", "organization");
    for f in &factors {
        print!("{:>7.0}x", f);
    }
    println!("{:>18}", "max tolerable (5%)");
    for org in [
        Organization::Baseline,
        Organization::Rfc,
        Organization::Shrf,
        Organization::LtrfStrand,
        Organization::Ltrf,
        Organization::LtrfPlus,
    ] {
        let sweep = latency_sweep(
            &workload.kernel,
            workload.memory(),
            11,
            org,
            &factors,
            &ExperimentConfig::new(org),
        )
        .expect("sweep succeeds");
        print!("{:<16}", org.label());
        for p in &sweep.points {
            print!("{:>8.2}", p.relative_ipc);
        }
        println!("{:>17.1}x", sweep.max_tolerable_latency(0.05));
    }
    println!("\nRegister-interval prefetching is what pushes the tolerable latency past 5x.");
}
