//! Quickstart: simulate one workload under the baseline register file and
//! under LTRF on an 8x-capacity, 6.3x-latency DWM main register file, and
//! compare.
//!
//! Run with `cargo run --release --example quickstart`.

use ltrf::core::{run_normalized, ExperimentConfig, Organization};
use ltrf::workloads::by_name;

fn main() {
    let workload = by_name("hotspot").expect("hotspot is part of the evaluated suite");
    println!(
        "workload: {} ({} registers/thread, {} static instructions)",
        workload.name(),
        workload.kernel.regs_per_thread(),
        workload.kernel.static_instruction_count()
    );

    for org in [
        Organization::Baseline,
        Organization::Rfc,
        Organization::Ltrf,
        Organization::LtrfPlus,
    ] {
        let config = ExperimentConfig::for_table2(org, 7);
        let result = run_normalized(&workload.kernel, workload.memory(), 42, &config)
            .expect("simulation succeeds");
        println!(
            "{:<14} normalized IPC {:.2}   normalized RF power {:.2}   cache hit rate {}",
            org.label(),
            result.normalized_ipc,
            result.normalized_power,
            result
                .result
                .cache_hit_rate
                .map_or("-".to_string(), |h| format!("{:.0}%", h * 100.0)),
        );
    }
    println!("\nLTRF keeps the 8x register file's capacity benefit while hiding its 6.3x latency.");
}
