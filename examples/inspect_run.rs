//! Inspect one simulation in detail: cycles, IPC, stall breakdown, cache and
//! DRAM behaviour, and register-file traffic for a chosen workload and
//! organization.
//!
//! Run with `cargo run --release --example inspect_run [workload] [org]`.

use ltrf::core::{run_experiment, ExperimentConfig, Organization};
use ltrf::workloads::by_name;

fn parse_org(name: &str) -> Organization {
    match name.to_ascii_lowercase().as_str() {
        "bl" | "baseline" => Organization::Baseline,
        "rfc" => Organization::Rfc,
        "shrf" => Organization::Shrf,
        "ltrf" => Organization::Ltrf,
        "ltrf+" | "ltrfplus" => Organization::LtrfPlus,
        "strand" | "ltrf-strand" => Organization::LtrfStrand,
        _ => Organization::Ideal,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let workload_name = args.get(1).map_or("hotspot", String::as_str);
    let workload = by_name(workload_name).expect("workload must be in the evaluated suite");
    let orgs: Vec<Organization> = if let Some(org) = args.get(2) {
        vec![parse_org(org)]
    } else {
        vec![
            Organization::Baseline,
            Organization::Rfc,
            Organization::Ltrf,
            Organization::LtrfPlus,
            Organization::Ideal,
        ]
    };
    let config_id = 7u8;
    println!(
        "workload {} on Table 2 configuration #{config_id}\n",
        workload.name()
    );
    // Also show the 1x-latency baseline reference everything is normalized to.
    let reference = run_experiment(
        &workload.kernel,
        workload.memory(),
        42,
        &ExperimentConfig::new(Organization::Baseline),
    )
    .expect("reference run");
    print_one("reference (BL @ 1x)", &reference);
    for org in orgs {
        let result = run_experiment(
            &workload.kernel,
            workload.memory(),
            42,
            &ExperimentConfig::for_table2(org, config_id),
        )
        .expect("run succeeds");
        print_one(org.label(), &result);
    }
}

fn print_one(label: &str, result: &ltrf::core::RunResult) {
    let s = &result.stats;
    println!("--- {label} ---");
    println!(
        "  IPC {:.3}  cycles {}  instructions {}  warps {}/{}  truncated {}",
        s.ipc(),
        s.cycles,
        s.instructions,
        s.warps_completed,
        s.warps_resident,
        s.truncated
    );
    println!(
        "  idle fraction {:.2}  prefetch stall cycles {}  warp activations {}",
        s.idle_fraction(),
        s.prefetch_stall_cycles,
        s.warp_activations
    );
    println!(
        "  RF traffic: MRF reads {} writes {}  cache reads {} writes {}  hit rate {}",
        s.regfile_accesses.mrf_reads,
        s.regfile_accesses.mrf_writes,
        s.regfile_accesses.rfc_reads,
        s.regfile_accesses.rfc_writes,
        s.register_cache_hit_rate
            .map_or("-".to_string(), |h| format!("{:.0}%", h * 100.0))
    );
    println!(
        "  memory: L1D hit rate {:.0}%  LLC hit rate {:.0}%  DRAM row hits {:.0}%  global requests {}  power {:.1} mW",
        s.memory.l1d.hit_rate() * 100.0,
        s.memory.llc.hit_rate() * 100.0,
        s.memory.dram.row_hit_rate() * 100.0,
        s.memory.global_requests,
        result.power.average_power_mw
    );
}
