//! Compiler explorer: show what the LTRF compiler passes do to a kernel —
//! the register-interval partition, the PREFETCH bit-vectors, liveness, and
//! how register-intervals compare to strands.
//!
//! Run with `cargo run --release --example compiler_explorer`.

use ltrf::compiler::{compile, CompilerOptions};
use ltrf::isa::disassemble;
use ltrf::workloads::by_name;

fn main() {
    let workload = by_name("pathfinder").expect("pathfinder is part of the evaluated suite");
    let kernel = &workload.kernel;
    println!("{}", disassemble(kernel));

    let interval = compile(kernel, &CompilerOptions::default()).expect("compiles");
    let strand = compile(kernel, &CompilerOptions::default().with_strands()).expect("compiles");

    println!("register-interval partition (N = 16):");
    for ri in interval.partition.intervals() {
        println!(
            "  {}: header {}, {} blocks, working set {} registers -> PREFETCH {:?}",
            ri.id,
            ri.header,
            ri.blocks.len(),
            ri.working_set.len(),
            interval.prefetch.bitvector(ri.id).to_vec(),
        );
    }
    println!(
        "\n{} register-intervals vs {} strands for the same kernel",
        interval.stats.interval_count, strand.stats.interval_count
    );
    println!(
        "mean working set: register-intervals {:.1} regs, strands {:.1} regs",
        interval.stats.mean_working_set, strand.stats.mean_working_set
    );
    println!(
        "code-size overhead of PREFETCH bit-vectors: {:.1}% (register-intervals) vs {:.1}% (strands)",
        interval.stats.code_size_overhead * 100.0,
        strand.stats.code_size_overhead * 100.0
    );

    let report = ltrf::compiler::trace_analysis::interval_length_report(
        &interval.kernel,
        &interval.partition,
        16,
        123,
    );
    println!(
        "dynamic register-interval length: real {:.1} instructions vs optimal {:.1} ({:.0}% of optimal)",
        report.real.mean,
        report.optimal.mean,
        report.mean_ratio() * 100.0
    );
}
