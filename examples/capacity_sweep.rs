//! Capacity sweep: how does each register-file organization respond to the
//! seven Table 2 design points (growing capacity, growing latency)?
//!
//! This reproduces the motivation of the paper in one program: capacity alone
//! (BL on config #2..#7) does not buy performance once the latency grows,
//! while LTRF keeps the benefit.
//!
//! Run with `cargo run --release --example capacity_sweep`.

use ltrf::core::{run_normalized, ExperimentConfig, Organization};
use ltrf::tech::RegFileConfig;
use ltrf::workloads::by_name;

fn main() {
    let workload = by_name("lud").expect("lud is part of the evaluated suite");
    println!(
        "workload: {} — IPC normalized to the baseline 256 KB SRAM register file\n",
        workload.name()
    );
    println!(
        "{:<8} {:>10} {:>10} {:>10} {:>10}",
        "config", "capacity", "latency", "BL", "LTRF"
    );
    for config in RegFileConfig::table2() {
        let bl = run_normalized(
            &workload.kernel,
            workload.memory(),
            7,
            &ExperimentConfig::for_table2(Organization::Baseline, config.id.0),
        )
        .expect("baseline run");
        let ltrf = run_normalized(
            &workload.kernel,
            workload.memory(),
            7,
            &ExperimentConfig::for_table2(Organization::Ltrf, config.id.0),
        )
        .expect("ltrf run");
        println!(
            "{:<8} {:>9.0}x {:>9.1}x {:>10.2} {:>10.2}",
            config.id.to_string(),
            config.capacity_factor,
            config.latency_factor,
            bl.normalized_ipc,
            ltrf.normalized_ipc
        );
    }
    println!("\nThe conventional design loses its capacity gains as latency grows; LTRF does not.");
}
